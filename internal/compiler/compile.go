package compiler

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/compiler/place"
	"repro/internal/p4"
	"repro/internal/p4r"
	"repro/internal/p4r/analysis"
	"repro/internal/p4r/diag"
	"repro/internal/rmt"
)

// Options tunes platform-dependent compilation limits.
type Options struct {
	// ProgramName names the generated program.
	ProgramName string
	// MaxInitActionBits is the maximum total parameter width of a single
	// init action; exceeding it splits the init table (§5.1.1). Real
	// targets allow very large actions; tests shrink this to exercise
	// the multi-init-table protocol.
	MaxInitActionBits int
	// MeasSlotBits is the width of packed measurement registers.
	MeasSlotBits int
	// MaxTableEntries bounds the generated entry count of one table
	// after alt expansion and version doubling (checked by the semantic
	// analyzer). Zero means the default platform limit.
	MaxTableEntries int
	// Werror promotes analyzer warnings to errors (mantisc -Werror).
	Werror bool
	// Target names a switch profile (a place registry name or a JSON
	// profile path) to run the RMT placement pass against after
	// lowering. Empty skips placement: library callers that compile
	// deliberately oversized programs (the Fig. 13 resource sweeps)
	// must stay unconstrained unless they opt in.
	Target string
}

// DefaultOptions returns production-like limits.
func DefaultOptions() Options {
	return Options{ProgramName: "p4r", MaxInitActionBits: 512, MeasSlotBits: 64}
}

// lerr builds a positioned lowering diagnostic. Line/col may be zero
// when the AST carries no position for the construct.
func lerr(code string, line, col int, format string, args ...any) error {
	return diag.Errorf(code, line, col, format, args...)
}

type compiler struct {
	f    *p4r.File
	opts Options
	prog *p4.Program
	plan *Plan

	// headerTypes by name; instance type by instance name.
	headerTypes map[string]*p4r.HeaderType

	// specs records specialization layouts for actions that use
	// malleable fields.
	specs map[string]*ActionSpecInfo

	// paramWidths caches inferred action parameter widths.
	mvID, vvID int
}

// Compile lowers a parsed P4R file into a program + plan. When
// opts.Target names a switch profile and the generated program does not
// place under its budgets, Compile returns the plan (with
// Plan.Placement populated, so callers can render the stage map)
// alongside the non-nil diagnostic error.
func Compile(f *p4r.File, opts Options) (*Plan, error) {
	if opts.MaxInitActionBits == 0 {
		opts.MaxInitActionBits = 512
	}
	if opts.MeasSlotBits == 0 {
		opts.MeasSlotBits = 64
	}
	if opts.ProgramName == "" {
		opts.ProgramName = "p4r"
	}
	c := &compiler{
		f:           f,
		opts:        opts,
		prog:        p4.NewProgram(opts.ProgramName),
		headerTypes: make(map[string]*p4r.HeaderType),
		specs:       make(map[string]*ActionSpecInfo),
	}
	c.plan = &Plan{
		Prog:      c.prog,
		MblValues: make(map[string]*MblValueInfo),
		MblFields: make(map[string]*MblFieldInfo),
		MblTables: make(map[string]*MblTableInfo),
	}
	// Mandatory front-end phase: the semantic analyzer validates the
	// transformation preconditions collect-all before any lowering runs,
	// so a broken program reports every problem, not just the first.
	diags := analysis.Analyze(f, analysis.Limits{
		MaxInitActionBits: opts.MaxInitActionBits,
		MeasSlotBits:      opts.MeasSlotBits,
		MaxTableEntries:   opts.MaxTableEntries,
	})
	if opts.Werror {
		diags.Promote()
	}
	c.plan.Diags = diags
	if diags.HasErrors() {
		return nil, diags
	}
	steps := []func() error{
		c.defineSchema,
		c.defineRegisters,
		c.defineMalleables,
		c.packInitTables,
		c.lowerFieldLists,
		c.lowerActions,
		c.lowerTables,
		c.lowerReactions,
		c.buildControlFlow,
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	if err := c.prog.Validate(); err != nil {
		return nil, lerr(diag.LowerInternal, 0, 0, "generated program invalid: %v", err)
	}
	if opts.Target != "" {
		prof, derr := place.Find(opts.Target)
		if derr != nil {
			c.plan.Diags.Add(derr)
			return nil, c.plan.Diags
		}
		pl := place.Place(c.prog, prof, place.Options{Pos: c.placementPositions()})
		c.plan.Placement = pl
		c.plan.Diags.Merge(pl.Diags)
		if pl.Diags.HasErrors() {
			return c.plan, c.plan.Diags
		}
	}
	return c.plan, nil
}

// placementPositions maps lowered table and register names back to P4R
// source positions for placement diagnostics. Compiler-generated state
// points at the declaration that caused it: measurement tables and
// registers at their reaction, duplicate/timestamp registers at the
// original register. Init and loader tables carry no position.
func (c *compiler) placementPositions() map[string]place.Pos {
	pos := make(map[string]place.Pos)
	for _, t := range c.f.Tables {
		pos[t.Name] = place.Pos{Line: t.Line, Col: t.Col}
	}
	for _, r := range c.f.Registers {
		pos[r.Name] = place.Pos{Line: r.Line, Col: r.Col}
	}
	rxnPos := make(map[string]place.Pos, len(c.f.Reactions))
	for _, r := range c.f.Reactions {
		rxnPos[r.Name] = place.Pos{Line: r.Line, Col: r.Col}
	}
	for _, rxn := range c.plan.Reactions {
		p := rxnPos[rxn.Name]
		if len(rxn.IngSlots) > 0 {
			pos[measTableName(rxn.Name, "ing")] = p
		}
		if len(rxn.EgrSlots) > 0 {
			pos[measTableName(rxn.Name, "egr")] = p
		}
		for _, slot := range rxn.IngSlots {
			pos[slot.Register] = p
		}
		for _, slot := range rxn.EgrSlots {
			pos[slot.Register] = p
		}
		for _, rp := range rxn.RegParams {
			pos[rp.Dup] = pos[rp.Orig]
			pos[rp.Ts] = pos[rp.Orig]
		}
	}
	return pos
}

// CompileSource parses and compiles P4R source text, recording the
// source's non-blank line count (the Table-1 "P4R LoC" metric). Like
// Compile, a placement failure returns the plan alongside the error.
func CompileSource(src string, opts Options) (*Plan, error) {
	f, err := p4r.Parse(src)
	if err != nil {
		return nil, err
	}
	plan, cerr := Compile(f, opts)
	if plan == nil {
		return nil, cerr
	}
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	plan.SourceLines = n
	return plan, cerr
}

func ceilLog2(n int) int {
	b := 0
	for (1 << b) < n {
		b++
	}
	return b
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func sanitize(name string) string { return strings.ReplaceAll(name, ".", "_") }

// ---- Step 1: schema ----

func (c *compiler) defineSchema() error {
	c.prog.DefineStandardMetadata()
	for _, ht := range c.f.HeaderTypes {
		if _, dup := c.headerTypes[ht.Name]; dup {
			return lerr(diag.LowerInvalid, ht.Line, ht.Col, "duplicate header_type %s", ht.Name)
		}
		c.headerTypes[ht.Name] = ht
	}
	for _, inst := range c.f.Instances {
		ht, ok := c.headerTypes[inst.TypeName]
		if !ok {
			return lerr(diag.LowerUnknown, inst.Line, inst.Col, "instance %s of unknown header_type %s", inst.Name, inst.TypeName)
		}
		for _, fd := range ht.Fields {
			if fd.Width <= 0 || fd.Width > 64 {
				return lerr(diag.LowerCapacity, ht.Line, ht.Col, "header_type %s: field %s has unsupported width %d", ht.Name, fd.Name, fd.Width)
			}
			c.prog.Schema.Define(inst.Name+"."+fd.Name, fd.Width)
		}
	}
	return nil
}

func (c *compiler) defineRegisters() error {
	for _, r := range c.f.Registers {
		if r.Width <= 0 || r.Width > 64 {
			return lerr(diag.LowerCapacity, r.Line, r.Col, "register %s has unsupported width %d", r.Name, r.Width)
		}
		c.prog.AddRegister(&p4.Register{Name: r.Name, Width: r.Width, Instances: r.InstanceCount})
	}
	return nil
}

// ---- Step 2: malleable declarations ----

func (c *compiler) defineMalleables() error {
	for _, mv := range c.f.MblValues {
		if mv.Width <= 0 || mv.Width > 64 {
			return lerr(diag.LowerCapacity, mv.Line, mv.Col, "malleable value %s has unsupported width %d", mv.Name, mv.Width)
		}
		meta := MetaPrefix + mv.Name
		c.prog.Schema.Define(meta, mv.Width)
		c.plan.MblValues[mv.Name] = &MblValueInfo{
			Name: mv.Name, MetaField: meta, Width: mv.Width, Init: mv.Init,
		}
	}
	for _, mf := range c.f.MblFields {
		for _, alt := range mf.Alts {
			id, ok := c.prog.Schema.Lookup(alt)
			if !ok {
				return lerr(diag.LowerUnknown, mf.Line, mf.Col, "malleable field %s: unknown alt %q", mf.Name, alt)
			}
			if w := c.prog.Schema.Width(id); w != mf.Width {
				return lerr(diag.LowerInvalid, mf.Line, mf.Col, "malleable field %s (width %d): alt %q has width %d",
					mf.Name, mf.Width, alt, w)
			}
		}
		selWidth := ceilLog2(len(mf.Alts))
		if selWidth == 0 {
			selWidth = 1
		}
		sel := MetaPrefix + mf.Name + "_alt"
		c.prog.Schema.Define(sel, selWidth)
		c.plan.MblFields[mf.Name] = &MblFieldInfo{
			Name: mf.Name, Selector: sel, Width: mf.Width,
			Alts: append([]string(nil), mf.Alts...), InitAlt: mf.InitAltIndex(),
		}
	}
	// Version bits exist whenever there is anything dynamic to version.
	if len(c.f.MblValues)+len(c.f.MblFields)+len(c.f.Tables) > 0 || len(c.f.Reactions) > 0 {
		hasMblTable := false
		for _, t := range c.f.Tables {
			if t.Malleable {
				hasMblTable = true
			}
		}
		c.plan.UsesVV = hasMblTable || len(c.f.MblValues)+len(c.f.MblFields) > 0
		c.plan.UsesMV = len(c.f.Reactions) > 0
		if c.plan.UsesVV {
			c.prog.Schema.Define(VVField, 1)
		}
		if c.plan.UsesMV {
			c.prog.Schema.Define(MVField, 1)
		}
	}
	return nil
}

// ---- Step 3: init-table bin packing (§4.1 compound usages) ----

// firstFitDecreasing packs items into bins of capacity capBits using the
// paper's sorted-first-fit heuristic. reserved items are pinned to bin 0
// (the master init table must hold the version bits).
func firstFitDecreasing(reserved, items []InitParam, capBits int) [][]InitParam {
	sorted := append([]InitParam(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Width != sorted[j].Width {
			return sorted[i].Width > sorted[j].Width
		}
		return sorted[i].Mbl < sorted[j].Mbl
	})
	bins := [][]InitParam{append([]InitParam(nil), reserved...)}
	used := []int{0}
	for _, p := range reserved {
		used[0] += p.Width
	}
	for _, it := range sorted {
		placed := false
		for b := range bins {
			if used[b]+it.Width <= capBits {
				bins[b] = append(bins[b], it)
				used[b] += it.Width
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, []InitParam{it})
			used = append(used, it.Width)
		}
	}
	return bins
}

func (c *compiler) packInitTables() error {
	var reserved, items []InitParam
	if c.plan.UsesVV {
		reserved = append(reserved, InitParam{Kind: InitVV, Width: 1})
	}
	if c.plan.UsesMV {
		reserved = append(reserved, InitParam{Kind: InitMV, Width: 1})
	}
	for _, mv := range c.f.MblValues {
		items = append(items, InitParam{Kind: InitValue, Mbl: mv.Name, Width: mv.Width, Init: mv.Init})
	}
	for _, mf := range c.f.MblFields {
		info := c.plan.MblFields[mf.Name]
		selWidth := c.prog.Schema.Width(c.prog.Schema.MustID(info.Selector))
		items = append(items, InitParam{Kind: InitField, Mbl: mf.Name, Width: selWidth, Init: uint64(info.InitAlt)})
	}
	if len(reserved)+len(items) == 0 {
		return nil
	}
	for _, it := range append(append([]InitParam(nil), reserved...), items...) {
		if it.Width > c.opts.MaxInitActionBits {
			return lerr(diag.LowerCapacity, 0, 0, "malleable %s (%d bits) exceeds MaxInitActionBits %d", it.Mbl, it.Width, c.opts.MaxInitActionBits)
		}
	}
	bins := firstFitDecreasing(reserved, items, c.opts.MaxInitActionBits)

	for b, bin := range bins {
		tname := fmt.Sprintf("p4r_init%d_", b+1)
		aname := fmt.Sprintf("p4r_init_action_%d_", b+1)
		action := &p4.Action{Name: aname}
		for _, ip := range bin {
			var meta, pname string
			switch ip.Kind {
			case InitVV:
				meta, pname = VVField, "config_ver"
			case InitMV:
				meta, pname = MVField, "measure_ver"
			case InitValue:
				meta, pname = c.plan.MblValues[ip.Mbl].MetaField, ip.Mbl
			case InitField:
				meta, pname = c.plan.MblFields[ip.Mbl].Selector, ip.Mbl+"_alt"
			}
			pidx := len(action.Params)
			action.Params = append(action.Params, p4.Param{Name: pname, Width: ip.Width})
			action.Body = append(action.Body, p4.ModifyField{
				Dst: c.prog.Schema.MustID(meta), DstName: meta, Src: p4.ParamOp(pidx, pname),
			})
			switch ip.Kind {
			case InitValue:
				c.plan.MblValues[ip.Mbl].InitTable = b
				c.plan.MblValues[ip.Mbl].ParamIdx = pidx
			case InitField:
				c.plan.MblFields[ip.Mbl].InitTable = b
				c.plan.MblFields[ip.Mbl].ParamIdx = pidx
			}
		}
		c.prog.AddAction(action)
		tbl := &p4.Table{Name: tname, ActionNames: []string{aname}, Size: 2}
		if b == 0 {
			// Master: no keys; configured via an atomically-updatable
			// default action.
			initData := make([]uint64, len(bin))
			for i, ip := range bin {
				initData[i] = ip.Init
			}
			tbl.Size = 1
			tbl.DefaultAction = &p4.ActionCall{Action: aname, Data: initData}
		} else {
			// Non-master init tables match on vv and are maintained like
			// malleable tables (two entries, three-phase updates).
			vvID := c.prog.Schema.MustID(VVField)
			tbl.Keys = []p4.MatchKey{{FieldName: VVField, Field: vvID, Width: 1, Kind: p4.MatchExact}}
		}
		c.prog.AddTable(tbl)
		c.plan.InitTables = append(c.plan.InitTables, &InitTableInfo{
			Table: tname, Action: aname, Params: bin, Master: b == 0,
		})
	}
	return nil
}

// ---- Step 4: field lists and hash calculations ----

// carrierFor ensures a malleable field has a carrier metadata field and
// loader table (the "load values in prior stages" optimization), and
// returns the carrier field name. line/col position the diagnostic at
// the referencing construct.
func (c *compiler) carrierFor(mblName string, line, col int) (string, error) {
	info, ok := c.plan.MblFields[mblName]
	if !ok {
		return "", lerr(diag.LowerUnknown, line, col, "unknown malleable field %q", mblName)
	}
	if info.Carrier != "" {
		return info.Carrier, nil
	}
	carrier := MetaPrefix + mblName + "_val"
	c.prog.Schema.Define(carrier, info.Width)
	info.Carrier = carrier

	loader := "p4r_load_" + mblName + "_"
	info.LoaderTable = loader
	selID := c.prog.Schema.MustID(info.Selector)
	var actionNames []string
	for i, alt := range info.Alts {
		an := fmt.Sprintf("p4r_load_%s_%d_", mblName, i)
		c.prog.AddAction(&p4.Action{
			Name: an,
			Body: []p4.Primitive{p4.ModifyField{
				Dst: c.prog.Schema.MustID(carrier), DstName: carrier,
				Src: p4.FieldOp(c.prog.Schema.MustID(alt), alt),
			}},
		})
		actionNames = append(actionNames, an)
		c.plan.StaticEntries = append(c.plan.StaticEntries, StaticEntry{
			Table: loader,
			Entry: rmt.Entry{
				Keys:   []rmt.KeySpec{rmt.ExactKey(uint64(i))},
				Action: an,
			},
		})
	}
	c.prog.AddTable(&p4.Table{
		Name:        loader,
		Keys:        []p4.MatchKey{{FieldName: info.Selector, Field: selID, Width: c.prog.Schema.Width(selID), Kind: p4.MatchExact}},
		ActionNames: actionNames,
		Size:        len(info.Alts),
	})
	return carrier, nil
}

func (c *compiler) lowerFieldLists() error {
	lists := make(map[string][]string) // field list name -> resolved field names
	for _, fl := range c.f.FieldLists {
		var fields []string
		for _, e := range fl.Entries {
			switch e.Kind {
			case p4r.ArgIdent:
				if _, ok := c.prog.Schema.Lookup(e.Ident); !ok {
					return lerr(diag.LowerUnknown, e.Line, e.Col, "field_list %s: unknown field %q", fl.Name, e.Ident)
				}
				fields = append(fields, e.Ident)
			case p4r.ArgMblRef:
				if mv, isVal := c.plan.MblValues[e.Mbl]; isVal {
					fields = append(fields, mv.MetaField)
					continue
				}
				carrier, err := c.carrierFor(e.Mbl, e.Line, e.Col)
				if err != nil {
					return err
				}
				fields = append(fields, carrier)
			default:
				return lerr(diag.LowerInvalid, fl.Line, fl.Col, "field_list %s: constants are not allowed", fl.Name)
			}
		}
		lists[fl.Name] = fields
	}
	for _, calc := range c.f.Calcs {
		fields, ok := lists[calc.Input]
		if !ok {
			return lerr(diag.LowerUnknown, calc.Line, calc.Col, "field_list_calculation %s: unknown field_list %q", calc.Name, calc.Input)
		}
		var algo p4.HashAlgo
		switch calc.Algorithm {
		case "crc16":
			algo = p4.HashCRC16
		case "crc32":
			algo = p4.HashCRC32
		case "identity":
			algo = p4.HashIdentity
		default:
			return lerr(diag.LowerUnknown, calc.Line, calc.Col, "field_list_calculation %s: unknown algorithm %q", calc.Name, calc.Algorithm)
		}
		width := calc.OutputWidth
		if width == 0 {
			width = 16
		}
		h := &p4.HashCalc{Name: calc.Name, Algo: algo, Width: width}
		for _, fn := range fields {
			h.Fields = append(h.Fields, c.prog.Schema.MustID(fn))
		}
		c.prog.AddHash(h)
	}
	return nil
}
