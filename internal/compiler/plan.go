// Package compiler implements the Mantis compiler: it lowers a parsed
// P4R file (internal/p4r) into
//
//  1. a valid, malleable p4.Program — with the transformations of §4 and
//     §5 of the paper applied: init tables for malleable values/fields
//     (Fig. 4), alt-selector metadata and action specialization for
//     malleable field writes and reads (Figs. 5, 6), measurement
//     registers with mv-gated working/checkpoint copies (Fig. 9, §4.2),
//     register duplication with timestamp registers (§5.2), and the vv
//     version column on malleable tables (§5.1.2); and
//
//  2. a Plan describing every generated artifact, which the Mantis agent
//     (internal/core) uses at runtime to drive the prologue/dialogue
//     loop, expand user table entries, and bind reaction parameters.
package compiler

import (
	"repro/internal/compiler/place"
	"repro/internal/p4"
	"repro/internal/p4r/diag"
	"repro/internal/rmt"
)

// Generated object name constants.
const (
	MetaPrefix = "p4r_meta_."
	// VVField is the 1-bit configuration version bit (§5.1).
	VVField = MetaPrefix + "vv_"
	// MVField is the 1-bit measurement version bit (§5.2).
	MVField = MetaPrefix + "mv_"
)

// Plan is everything the agent needs to operate the generated program.
type Plan struct {
	Prog *p4.Program
	// SourceLines is the non-blank line count of the input P4R (Table 1).
	SourceLines int

	MblValues map[string]*MblValueInfo
	MblFields map[string]*MblFieldInfo
	// InitOrder lists init-parameter names in packed order; element 0 of
	// InitTables is the master (holds vv and mv).
	InitTables []*InitTableInfo

	MblTables map[string]*MblTableInfo

	Reactions []*ReactionInfo

	// StaticEntries are fixed entries the prologue installs once
	// (carrier-loader tables for malleable fields used in field lists).
	StaticEntries []StaticEntry

	// UsesVV/UsesMV report whether the program carries version bits.
	UsesVV bool
	UsesMV bool

	// Diags holds the semantic analyzer's findings for this compile
	// (warnings included even when compilation succeeds), plus any
	// placement findings when Options.Target was set.
	Diags *diag.List

	// Placement is the RMT stage assignment computed when
	// Options.Target was set; nil otherwise.
	Placement *place.Placement
}

// MblValueInfo describes one malleable value.
type MblValueInfo struct {
	Name string
	// MetaField is the generated metadata field carrying the value.
	MetaField string
	Width     int
	Init      uint64
	// InitTable / ParamIdx locate the value's slot in the packed init
	// tables.
	InitTable int
	ParamIdx  int
}

// MblFieldInfo describes one malleable field.
type MblFieldInfo struct {
	Name string
	// Selector is the generated alt-selector metadata field
	// (width ceil(log2(|alts|))).
	Selector string
	Width    int
	// Alts are the alternative field names; InitAlt indexes the initial.
	Alts    []string
	InitAlt int
	// Carrier, if non-empty, is the metadata field loaded with the
	// current alternative's value at the start of the pipeline (the §4.1
	// "load values in prior stages" optimization, used for field lists).
	Carrier string
	// LoaderTable is the table loading Carrier, if any.
	LoaderTable string
	InitTable   int
	ParamIdx    int
}

// InitParamKind classifies init-table action parameters.
type InitParamKind int

// Init parameter kinds.
const (
	InitValue InitParamKind = iota // malleable value
	InitField                      // malleable field selector
	InitVV                         // configuration version bit
	InitMV                         // measurement version bit
)

// InitParam is one parameter of a packed init action.
type InitParam struct {
	Kind InitParamKind
	// Mbl is the malleable name for InitValue/InitField.
	Mbl   string
	Width int
	// Init is the initial numeric value (value, alt index, or 0).
	Init uint64
}

// InitTableInfo is one generated init table. The master (index 0) has no
// match keys and is updated atomically via its default action; the
// others match on vv and are maintained as malleable tables (§5.1.1).
type InitTableInfo struct {
	Table  string
	Action string
	Params []InitParam
	Master bool
}

// ParamIndexOf returns the action-parameter index of a malleable, or -1.
func (it *InitTableInfo) ParamIndexOf(mbl string) int {
	for i, p := range it.Params {
		if p.Mbl == mbl && (p.Kind == InitValue || p.Kind == InitField) {
			return i
		}
	}
	return -1
}

// UserKey describes one user-visible key column of a malleable table,
// before vv and alt expansion.
type UserKey struct {
	// FieldName is the concrete field, or "" when MblField is set.
	FieldName string
	MatchType string
	// MblField names the malleable field matched by this column; the
	// generated table carries |alts| ternary columns plus the selector.
	MblField string
	Width    int
}

// MblTableInfo maps a malleable table's user-visible schema onto the
// generated table layout. Generated column order is:
//
//	[expanded user columns...] [selector columns...] [vv column]
//
// where a plain user column occupies one generated column and a
// malleable-field user column occupies |alts| ternary columns (its
// selector column is appended in order of first use).
type MblTableInfo struct {
	Table string
	Keys  []UserKey
	// GenKeyCount is the number of generated key columns.
	GenKeyCount int
	// ColOffset[i] is the first generated column of user key i.
	ColOffset []int
	// SelectorCol maps malleable field name -> generated selector column.
	SelectorCol map[string]int
	// VVCol is the generated vv column index (last).
	VVCol int
	// ActionSpec maps a user action name to its specialization layout.
	ActionSpec map[string]*ActionSpecInfo
}

// ActionSpecInfo records how a user action was specialized over the
// malleable fields it uses.
type ActionSpecInfo struct {
	// Fields are the malleable fields the action uses, in specialization
	// order (outermost first).
	Fields []string
	// AltCounts[i] is len(alts) of Fields[i].
	AltCounts []int
	// Variant returns the generated action name for a combination of alt
	// indices (row-major over AltCounts); stored flattened.
	Variants []string
}

// VariantFor returns the generated action name for the given alt
// indices (one per specialized field; empty if the action was not
// specialized).
func (a *ActionSpecInfo) VariantFor(alts []int) string {
	idx := 0
	for i, ai := range alts {
		idx = idx*a.AltCounts[i] + ai
	}
	return a.Variants[idx]
}

// SlotField places one reaction field parameter inside a packed
// measurement register slot.
type SlotField struct {
	// Param is the P4R-visible parameter name (e.g. "ipv4.srcAddr").
	Param string
	// Var is the identifier bound in the reaction body ('.' -> '_').
	Var   string
	Width int
	Shift int // bit offset within the 64-bit slot
}

// MeasSlot is one generated 64-bit measurement register with two
// mv-gated instances (index mv = working copy).
type MeasSlot struct {
	Register string
	Fields   []SlotField
}

// RegParamInfo describes a duplicated user register parameter.
type RegParamInfo struct {
	// Orig is the user register; Dup and Ts are the generated duplicate
	// and timestamp registers, each with 2*PaddedN instances.
	Orig string
	Dup  string
	Ts   string
	// Var is the bound array variable name in the reaction body.
	Var string
	// Lo..Hi is the polled index range (inclusive).
	Lo, Hi int
	// N is the original instance count, PaddedN the power-of-two padding
	// used for the mv-prefixed dup index.
	N       int
	PaddedN int
}

// MblParamInfo is a malleable read parameter (its last-written value is
// passed into the body).
type MblParamInfo struct {
	Name string
	Var  string
}

// ReactionInfo is one reaction's runtime description.
type ReactionInfo struct {
	Name string
	Body string
	// IngSlots/EgrSlots are packed measurement registers written at the
	// end of the respective pipeline.
	IngSlots  []MeasSlot
	EgrSlots  []MeasSlot
	RegParams []RegParamInfo
	MblParams []MblParamInfo
}

// StaticEntry is an entry the prologue installs verbatim.
type StaticEntry struct {
	Table string
	Entry rmt.Entry
}
