package place_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/compiler/place"
	"repro/internal/fabric"
	"repro/internal/usecases"
)

// shippedPrograms returns every P4R program the repo ships: the
// examples/ corpus plus the usecases and fabric built-ins.
func shippedPrograms(t *testing.T) map[string]string {
	t.Helper()
	progs := map[string]string{
		"usecases/DosP4R":        usecases.DosP4R,
		"usecases/GrayP4R":       usecases.GrayP4R,
		"usecases/HashPolarP4R":  usecases.HashPolarP4R,
		"usecases/RLECNP4R":      usecases.RLECNP4R,
		"usecases/BaseRouterP4R": usecases.BaseRouterP4R,
		"fabric/LeafP4R":         fabric.LeafP4R,
		"fabric/SpineP4R":        fabric.SpineP4R,
	}
	root := filepath.Join("..", "..", "..", "examples")
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".p4r") {
			return nil
		}
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, _ := filepath.Rel(filepath.Join(root, ".."), path)
		progs[rel] = string(src)
		return nil
	})
	if err != nil {
		t.Fatalf("walking examples: %v", err)
	}
	return progs
}

func compileWithTarget(t *testing.T, name, src, target string) (*compiler.Plan, error) {
	t.Helper()
	opts := compiler.DefaultOptions()
	opts.Target = target
	plan, err := compiler.CompileSource(src, opts)
	if plan == nil && err != nil {
		t.Fatalf("%s: compile failed before placement: %v", name, err)
	}
	return plan, err
}

// TestShippedProgramsFitDefaultProfile pins the acceptance criterion
// that every program we ship places cleanly under the default profile.
func TestShippedProgramsFitDefaultProfile(t *testing.T) {
	for name, src := range shippedPrograms(t) {
		plan, err := compileWithTarget(t, name, src, place.DefaultTarget)
		if err != nil {
			t.Errorf("%s does not place under %s:\n%v", name, place.DefaultTarget, err)
			continue
		}
		pl := plan.Placement
		if pl == nil {
			t.Errorf("%s: no placement computed", name)
			continue
		}
		if !pl.Fits() {
			t.Errorf("%s: placement reports violations:\n%s", name, pl.Report())
		}
		if pl.IngressStages+pl.EgressStages > pl.Profile.Stages {
			t.Errorf("%s: uses %d+%d stages, profile has %d",
				name, pl.IngressStages, pl.EgressStages, pl.Profile.Stages)
		}
	}
}

// TestShippedProgramsFitTofinoLike: a bigger-iron profile must also fit.
func TestShippedProgramsFitTofinoLike(t *testing.T) {
	for name, src := range shippedPrograms(t) {
		if _, err := compileWithTarget(t, name, src, "tofino-like"); err != nil {
			t.Errorf("%s does not place under tofino-like:\n%v", name, err)
		}
	}
}

// TestMiniRejectsAShippedProgram pins that the deliberately tight mini
// profile rejects at least one realistic program, with a positioned
// P-family diagnostic carrying a hint.
func TestMiniRejectsAShippedProgram(t *testing.T) {
	rejected := 0
	for name, src := range shippedPrograms(t) {
		plan, err := compileWithTarget(t, name, src, place.MiniTarget)
		if err == nil {
			continue
		}
		rejected++
		if plan == nil || plan.Placement == nil {
			t.Errorf("%s: placement failure must still return the plan", name)
			continue
		}
		found := false
		for _, d := range plan.Placement.Diags.Diags {
			if !strings.HasPrefix(d.Code, "P") {
				t.Errorf("%s: non-placement code %s in placement diags", name, d.Code)
			}
			if d.Line > 0 && d.Hint != "" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: mini rejection has no positioned diagnostic with a hint:\n%v", name, err)
		}
		if !strings.Contains(plan.Placement.Report(), "DOES NOT FIT") {
			t.Errorf("%s: report does not say DOES NOT FIT:\n%s", name, plan.Placement.Report())
		}
	}
	if rejected == 0 {
		t.Fatalf("mini profile rejected no shipped program; its budgets are too generous")
	}
}
