package place

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/p4"
	"repro/internal/p4r/diag"
)

// mini pulls the tight test profile out of the registry.
func mini(t *testing.T) Profile {
	t.Helper()
	p, derr := Find(MiniTarget)
	if derr != nil {
		t.Fatalf("mini profile: %v", derr)
	}
	return p
}

// buildProg constructs a program where table i exact-matches field fi
// and runs an action writing field f(i+1) — a pure dependency chain.
// width/size tune the footprint; ternary switches the keys to TCAM.
func chainProg(n, width, size int, ternary bool) *p4.Program {
	prog := p4.NewProgram("test")
	for i := 0; i <= n; i++ {
		prog.Schema.Define(field(i), width)
	}
	kind := p4.MatchExact
	if ternary {
		kind = p4.MatchTernary
	}
	for i := 0; i < n; i++ {
		an := "a" + field(i)
		dst := prog.Schema.MustID(field(i + 1))
		prog.AddAction(&p4.Action{Name: an, Body: []p4.Primitive{
			p4.ModifyField{Dst: dst, DstName: field(i + 1), Src: p4.ConstOp(1)},
		}})
		tn := "t" + field(i)
		id := prog.Schema.MustID(field(i))
		prog.AddTable(&p4.Table{
			Name:        tn,
			Keys:        []p4.MatchKey{{FieldName: field(i), Field: id, Width: width, Kind: kind}},
			ActionNames: []string{an},
			Size:        size,
		})
		prog.Ingress = append(prog.Ingress, p4.Apply{Table: tn})
	}
	return prog
}

// independentProg builds n tables that all match field f0 and write
// nothing — mutually independent, so any stage works for each.
func independentProg(n, width, size int, ternary bool) *p4.Program {
	prog := p4.NewProgram("test")
	prog.Schema.Define(field(0), width)
	kind := p4.MatchExact
	if ternary {
		kind = p4.MatchTernary
	}
	prog.AddAction(&p4.Action{Name: "nop", Body: []p4.Primitive{p4.NoOp{}}})
	id := prog.Schema.MustID(field(0))
	for i := 0; i < n; i++ {
		tn := "t" + field(i)
		prog.AddTable(&p4.Table{
			Name:        tn,
			Keys:        []p4.MatchKey{{FieldName: field(0), Field: id, Width: width, Kind: kind}},
			ActionNames: []string{"nop"},
			Size:        size,
		})
		prog.Ingress = append(prog.Ingress, p4.Apply{Table: tn})
	}
	return prog
}

func field(i int) string { return "f" + string(rune('A'+i)) }

func codes(pl *Placement) []string {
	var out []string
	for _, d := range pl.Diags.Diags {
		out = append(out, d.Code)
	}
	return out
}

func hasCode(pl *Placement, code string) bool {
	for _, d := range pl.Diags.Diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestChainWithinStagesFits(t *testing.T) {
	pl := Place(chainProg(4, 16, 8, false), mini(t), Options{})
	if !pl.Fits() {
		t.Fatalf("4-chain should fit 4 stages: %v", pl.Diags)
	}
	if pl.IngressStages != 4 {
		t.Fatalf("IngressStages = %d, want 4", pl.IngressStages)
	}
	for i := 0; i < 4; i++ {
		tp := pl.Tables["t"+field(i)]
		if tp.Stage != i+1 {
			t.Errorf("t%s at stage %d, want %d", field(i), tp.Stage, i+1)
		}
	}
}

func TestDependencyChainTooLong(t *testing.T) {
	pl := Place(chainProg(6, 16, 8, false), mini(t), Options{Pos: map[string]Pos{
		"t" + field(4): {Line: 40, Col: 3},
	}})
	if pl.Fits() {
		t.Fatalf("6-chain must not fit 4 stages")
	}
	if !hasCode(pl, diag.PlaceStages) {
		t.Fatalf("want %s, got %v", diag.PlaceStages, codes(pl))
	}
	var positioned *diag.Diagnostic
	for _, d := range pl.Diags.Diags {
		if d.Code == diag.PlaceStages && d.Line == 40 && d.Col == 3 {
			positioned = d
		}
	}
	if positioned == nil {
		t.Errorf("no %s diagnostic at 40:3: %v", diag.PlaceStages, pl.Diags)
	} else if positioned.Hint == "" {
		t.Errorf("placement diagnostic must carry a hint")
	}
	// Placement continues past the failure: every table has a stage.
	if len(pl.Tables) != 6 {
		t.Errorf("placed %d tables, want all 6", len(pl.Tables))
	}
	if tp := pl.Tables["t"+field(5)]; tp.Stage <= mini(t).Stages {
		t.Errorf("overflowed table charged to physical stage %d", tp.Stage)
	}
}

func TestSRAMBudgetExhausted(t *testing.T) {
	// Each table is ~40 Kb (2500 entries x 16 b key): fits an empty mini
	// stage (64 Kb) alone, but no two share one. The 5th finds no stage.
	pl := Place(independentProg(5, 16, 2500, false), mini(t), Options{})
	if pl.Fits() {
		t.Fatalf("five 40Kb tables must not fit four 64Kb stages")
	}
	if !hasCode(pl, diag.PlaceSRAM) {
		t.Fatalf("want %s, got %v", diag.PlaceSRAM, codes(pl))
	}
}

func TestTCAMBudgetExhausted(t *testing.T) {
	// Ternary doubles key bits: 16 b x 2 x 300 entries = 9600 TCAM bits;
	// one per mini stage (16 Kb), the fifth overflows.
	pl := Place(independentProg(5, 16, 300, true), mini(t), Options{})
	if pl.Fits() {
		t.Fatalf("five 9.6Kb TCAM tables must not fit four 16Kb stages")
	}
	if !hasCode(pl, diag.PlaceTCAM) {
		t.Fatalf("want %s, got %v", diag.PlaceTCAM, codes(pl))
	}
}

func TestOversizedTable(t *testing.T) {
	pl := Place(independentProg(1, 64, 4096, false), mini(t), Options{})
	if !hasCode(pl, diag.PlaceOversized) {
		t.Fatalf("want %s, got %v", diag.PlaceOversized, codes(pl))
	}
}

func TestTableSlotsExhausted(t *testing.T) {
	// mini: 4 stages x 6 slots = 24 tiny tables; the 25th has no slot.
	pl := Place(independentProg(25, 8, 2, false), mini(t), Options{})
	if pl.Fits() {
		t.Fatalf("25 tables must not fit 24 slots")
	}
	if !hasCode(pl, diag.PlaceSlots) {
		t.Fatalf("want %s, got %v", diag.PlaceSlots, codes(pl))
	}
}

func TestRegisterFileOverflow(t *testing.T) {
	prog := chainProg(1, 16, 8, false)
	prog.AddRegister(&p4.Register{Name: "big", Width: 64, Instances: 600}) // 38400 b > 32768
	prog.Actions["a"+field(0)].Body = append(prog.Actions["a"+field(0)].Body,
		p4.RegisterIncrement{Reg: "big", Index: p4.ConstOp(0), By: p4.ConstOp(1)})
	pl := Place(prog, mini(t), Options{Pos: map[string]Pos{"big": {Line: 7, Col: 1}}})
	if pl.Fits() {
		t.Fatalf("38400-bit register must overflow the 32768-bit stage register file")
	}
	if !hasCode(pl, diag.PlaceRegFile) {
		t.Fatalf("want %s, got %v", diag.PlaceRegFile, codes(pl))
	}
	if st, ok := pl.Registers["big"]; !ok || st != pl.Tables["t"+field(0)].Stage {
		t.Errorf("register charged to stage %d, want the accessing table's stage %d",
			st, pl.Tables["t"+field(0)].Stage)
	}
}

func TestUnreferencedRegisterChargedToStageOne(t *testing.T) {
	prog := chainProg(1, 16, 8, false)
	prog.AddRegister(&p4.Register{Name: "idle", Width: 32, Instances: 4})
	pl := Place(prog, mini(t), Options{})
	if st := pl.Registers["idle"]; st != 1 {
		t.Errorf("idle register at stage %d, want 1", st)
	}
}

func TestEgressPlacedAfterIngress(t *testing.T) {
	prog := chainProg(2, 16, 8, false)
	prog.Schema.Define("eg", 16)
	prog.AddAction(&p4.Action{Name: "enop", Body: []p4.Primitive{p4.NoOp{}}})
	id := prog.Schema.MustID("eg")
	prog.AddTable(&p4.Table{
		Name:        "etbl",
		Keys:        []p4.MatchKey{{FieldName: "eg", Field: id, Width: 16, Kind: p4.MatchExact}},
		ActionNames: []string{"enop"},
		Size:        4,
	})
	prog.Egress = []p4.ControlStmt{p4.Apply{Table: "etbl"}}
	pl := Place(prog, mini(t), Options{})
	if !pl.Fits() {
		t.Fatalf("placement: %v", pl.Diags)
	}
	if pl.IngressStages != 2 || pl.EgressStages != 1 {
		t.Fatalf("stages = %d ingress + %d egress, want 2+1", pl.IngressStages, pl.EgressStages)
	}
	if tp := pl.Tables["etbl"]; tp.Stage != 3 || tp.Pipeline != "egress" {
		t.Fatalf("etbl at %s stage %d, want egress stage 3", tp.Pipeline, tp.Stage)
	}
}

func TestOccupancyOverridesDeclaredSize(t *testing.T) {
	// Declared size would overflow, live occupancy fits.
	prog := independentProg(1, 64, 4096, false)
	pl := Place(prog, mini(t), Options{Occupancy: map[string]int{"t" + field(0): 10}})
	if !pl.Fits() {
		t.Fatalf("10 live entries should fit: %v", pl.Diags)
	}
}

func TestFindUnknownProfile(t *testing.T) {
	_, derr := Find("no-such-switch")
	if derr == nil || derr.Code != diag.PlaceProfile {
		t.Fatalf("want %s, got %v", diag.PlaceProfile, derr)
	}
	if !strings.Contains(derr.Hint, "generic-16stage") {
		t.Errorf("hint should list built-in profiles: %q", derr.Hint)
	}
}

func TestLoadProfileFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "lab.json")
	if err := os.WriteFile(good, []byte(`{"name":"lab","stages":8,"stage_sram_bits":524288,"stage_tcam_bits":65536,"stage_register_bits":262144,"stage_tables":8}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, derr := Find(good)
	if derr != nil {
		t.Fatalf("load: %v", derr)
	}
	if p.Name != "lab" || p.Stages != 8 {
		t.Fatalf("loaded %+v", p)
	}

	for name, body := range map[string]string{
		"bad-json.json":   `{"stages": `,
		"bad-budget.json": `{"name":"x","stages":0,"stage_sram_bits":1,"stage_tables":1}`,
		"bad-field.json":  `{"name":"x","stages":4,"stage_sram_bits":1,"stage_tables":1,"sram":9}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, derr := Find(path); derr == nil || derr.Code != diag.PlaceProfile {
			t.Errorf("%s: want %s, got %v", name, diag.PlaceProfile, derr)
		}
	}
	if _, derr := Find(filepath.Join(dir, "missing.json")); derr == nil {
		t.Errorf("missing file must fail")
	}
}

func TestReportShowsUtilization(t *testing.T) {
	pl := Place(chainProg(2, 16, 100, false), mini(t), Options{})
	rep := pl.Report()
	for _, want := range []string{"FITS", "stage", "ingress", "%"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("want >=3 built-ins, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
