// Package place implements the RMT resource-placement pass: after
// lowering, every table of the generated program is assigned to a
// physical match stage honoring match/action dependency order, and
// charged against the per-stage SRAM/TCAM/slot budgets of a target
// switch Profile; stateful registers are charged against the per-stage
// register file of the stage that accesses them.
//
// Like the semantic analyzer the pass collects every violation instead
// of dying on the first: a table that does not fit is force-placed (in
// an overflow stage past the profile's last physical stage) so that the
// rest of the program still places and the report stays readable. Each
// violation is a positioned P-family diagnostic (internal/p4r/diag).
package place

import (
	"fmt"
	"sort"

	"repro/internal/p4"
	"repro/internal/p4r/diag"
)

// Pos is a source position for diagnostics, keyed by table or register
// name in Options.Pos. Zero means unknown (compiler-generated state).
type Pos struct {
	Line int
	Col  int
}

// Options tunes a placement run.
type Options struct {
	// Pos maps lowered table and register names to the source position
	// to attach to diagnostics about them.
	Pos map[string]Pos
	// Occupancy overrides the charged entry count per table; tables not
	// listed charge their declared (post-expansion) Size.
	Occupancy map[string]int
}

// TablePlacement records where one table landed.
type TablePlacement struct {
	Name     string
	Pipeline string // "ingress" or "egress"
	// Stage is the assigned physical stage (1-based). Stages greater
	// than Profile.Stages are overflow: the table did not fit.
	Stage int
	// MinStage is the earliest stage the dependency order allows.
	MinStage  int
	Footprint p4.TableFootprint
}

// StageUse aggregates what one physical stage holds.
type StageUse struct {
	Stage        int
	SRAMBits     int
	TCAMBits     int
	RegisterBits int
	Tables       []string
	Registers    []string
}

// Placement is the result of placing one program against a profile.
type Placement struct {
	Profile Profile
	// Stages is indexed by stage-1 and may extend past Profile.Stages
	// when the program overflows.
	Stages    []StageUse
	Tables    map[string]*TablePlacement
	Registers map[string]int // register name -> charged stage
	// IngressStages/EgressStages count the physical stages each
	// pipeline consumed (including overflow).
	IngressStages int
	EgressStages  int
	Diags         *diag.List
}

// Fits reports whether the program placed without violations.
func (pl *Placement) Fits() bool { return !pl.Diags.HasErrors() }

// stage returns the StageUse for 1-based stage s, growing as needed.
func (pl *Placement) stage(s int) *StageUse {
	for len(pl.Stages) < s {
		pl.Stages = append(pl.Stages, StageUse{Stage: len(pl.Stages) + 1})
	}
	return &pl.Stages[s-1]
}

// Place assigns every table and register of prog to a stage under prof.
func Place(prog *p4.Program, prof Profile, opts Options) *Placement {
	pl := &Placement{
		Profile:   prof,
		Tables:    make(map[string]*TablePlacement),
		Registers: make(map[string]int),
		Diags:     &diag.List{},
	}
	ingEnd := pl.placePipeline(prog, "ingress", prog.Ingress, 1, opts)
	pl.IngressStages = ingEnd
	egrEnd := pl.placePipeline(prog, "egress", prog.Egress, ingEnd+1, opts)
	pl.EgressStages = egrEnd - ingEnd
	pl.placeRegisters(prog, opts)
	pl.Diags.Sort()
	return pl
}

// placePipeline places one pipeline's tables into stages [start..] and
// returns the last stage used (start-1 if the pipeline applies no
// tables). The budget window ends at prof.Stages regardless of start:
// ingress and egress share the physical stage count.
func (pl *Placement) placePipeline(prog *p4.Program, pipeline string, flow []p4.ControlStmt, start int, opts Options) int {
	order, deps := prog.TableDependencies(flow)
	last := start - 1
	for _, name := range order {
		t := prog.Tables[name]
		cap := t.Size
		if occ, ok := opts.Occupancy[name]; ok {
			cap = occ
		}
		if cap <= 0 {
			cap = 1 // unbounded tables still occupy at least one entry's worth
		}
		f := prog.FootprintOf(t, cap)
		min := start
		for _, d := range deps[name] {
			if dp := pl.Tables[d]; dp != nil && dp.Stage+1 > min {
				min = dp.Stage + 1
			}
		}
		stage := pl.fit(name, f, min, opts)
		tp := &TablePlacement{Name: name, Pipeline: pipeline, Stage: stage, MinStage: min, Footprint: f}
		pl.Tables[name] = tp
		su := pl.stage(stage)
		su.SRAMBits += f.SRAMBits
		su.TCAMBits += f.TCAMBits
		su.Tables = append(su.Tables, name)
		if stage > last {
			last = stage
		}
	}
	return last
}

// fit finds the first stage >= min with room for footprint f, emitting
// a diagnostic when that stage lies past the profile's last physical
// stage. The returned stage always accepts the table (overflow stages
// start empty), so placement continues for the rest of the program.
func (pl *Placement) fit(name string, f p4.TableFootprint, min int, opts Options) int {
	prof := pl.Profile
	pos := opts.Pos[name]

	// A table bigger than an empty stage will never fit anywhere: flag
	// it once (P005) and pin it at its dependency-minimal stage so the
	// report shows the oversized stage rather than an infinite search.
	if f.SRAMBits > prof.StageSRAMBits || f.TCAMBits > prof.StageTCAMBits {
		kind, bits, budget := "SRAM", f.SRAMBits, prof.StageSRAMBits
		if f.TCAMBits > prof.StageTCAMBits {
			kind, bits, budget = "TCAM", f.TCAMBits, prof.StageTCAMBits
		}
		pl.Diags.Add(diag.Errorf(diag.PlaceOversized, pos.Line, pos.Col,
			"table %q needs %d %s bits for %d entries but a whole empty stage of %q has only %d",
			name, bits, kind, f.Capacity, prof.Name, budget).
			WithHint("split table %s or reduce its capacity", name))
		return min
	}

	blockedSlots, blockedTCAM := true, false
	for s := min; s <= prof.Stages; s++ {
		su := pl.stage(s)
		switch {
		case len(su.Tables) >= prof.StageTables:
			// slot-blocked; keep scanning
		case f.TCAMBits > 0 && su.TCAMBits+f.TCAMBits > prof.StageTCAMBits:
			blockedSlots, blockedTCAM = false, true
		case su.SRAMBits+f.SRAMBits > prof.StageSRAMBits:
			blockedSlots = false
		default:
			return s
		}
	}

	// No physical stage works: diagnose why, then spill into the first
	// overflow stage that the dependency order and prior spills allow.
	switch {
	case min > prof.Stages:
		pl.Diags.Add(diag.Errorf(diag.PlaceStages, pos.Line, pos.Col,
			"table %q needs stage %d but profile %q has only %d stages",
			name, min, prof.Name, prof.Stages).
			WithHint("shorten the dependency chain before %s or choose a larger -target profile", name))
	case blockedSlots:
		pl.Diags.Add(diag.Errorf(diag.PlaceSlots, pos.Line, pos.Col,
			"table %q: no free table slot in stages %d..%d (profile %q allows %d tables per stage)",
			name, min, prof.Stages, prof.Name, prof.StageTables).
			WithHint("merge tables or choose a -target profile with more table slots"))
	case blockedTCAM:
		pl.Diags.Add(diag.Errorf(diag.PlaceTCAM, pos.Line, pos.Col,
			"table %q needs %d TCAM bits but no stage in %d..%d of profile %q has that much free",
			name, f.TCAMBits, min, prof.Stages, prof.Name).
			WithHint("split table %s or reduce its capacity", name))
	default:
		pl.Diags.Add(diag.Errorf(diag.PlaceSRAM, pos.Line, pos.Col,
			"table %q needs %d SRAM bits but no stage in %d..%d of profile %q has that much free",
			name, f.SRAMBits, min, prof.Stages, prof.Name).
			WithHint("split table %s or reduce its capacity", name))
	}

	s := prof.Stages + 1
	if min > s {
		s = min
	}
	for {
		su := pl.stage(s)
		if len(su.Tables) < prof.StageTables &&
			su.SRAMBits+f.SRAMBits <= prof.StageSRAMBits &&
			(f.TCAMBits == 0 || su.TCAMBits+f.TCAMBits <= prof.StageTCAMBits) {
			return s
		}
		s++
	}
}

// placeRegisters charges every register array against the register file
// of the stage holding the first table that accesses it (registers are
// bound to a single stage on RMT hardware; RegisterStageViolations
// covers multi-stage access separately). Registers no table touches are
// charged to stage 1 — they still occupy SRAM somewhere.
func (pl *Placement) placeRegisters(prog *p4.Program, opts Options) {
	accessors := prog.RegisterAccessors()
	for _, name := range prog.RegisterOrder {
		reg := prog.Registers[name]
		stage := 1
		for _, tbl := range accessors[name] {
			if tp := pl.Tables[tbl]; tp != nil {
				stage = tp.Stage
				break
			}
		}
		su := pl.stage(stage)
		before := su.RegisterBits
		su.RegisterBits += reg.Bits()
		su.Registers = append(su.Registers, name)
		pl.Registers[name] = stage
		if before <= pl.Profile.StageRegisterBits && su.RegisterBits > pl.Profile.StageRegisterBits {
			pos := opts.Pos[name]
			pl.Diags.Add(diag.Errorf(diag.PlaceRegFile, pos.Line, pos.Col,
				"register %q (%d bits) overflows the stage %d register file: %d of %d bits used",
				name, reg.Bits(), stage, su.RegisterBits, pl.Profile.StageRegisterBits).
				WithHint("reduce the width or instance count of %s, or spread accessing tables across stages", name))
		}
	}
}

// overBudgetStages lists physical-stage numbers the placement overflowed
// past, for the report footer.
func (pl *Placement) overBudgetStages() []int {
	var out []int
	for _, su := range pl.Stages {
		if su.Stage > pl.Profile.Stages && (len(su.Tables) > 0 || len(su.Registers) > 0) {
			out = append(out, su.Stage)
		}
	}
	sort.Ints(out)
	return out
}

// pct renders used/budget as an integer percentage; budget 0 with use
// renders as "inf".
func pct(used, budget int) string {
	if budget <= 0 {
		if used == 0 {
			return "0%"
		}
		return "inf"
	}
	return fmt.Sprintf("%d%%", (used*100+budget-1)/budget)
}
