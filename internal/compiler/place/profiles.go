package place

import (
	"encoding/json"
	"os"
	"sort"
	"strings"

	"repro/internal/p4r/diag"
)

// Profile describes the per-stage resource budgets of a target switch.
// Budgets are per physical match stage; the pipeline model follows RMT
// (ingress and egress consume disjoint stages, so a program's total
// stage demand is ingress + egress).
//
// Profiles are resolved by Find from a built-in registry or loaded from
// a JSON file with the same field names, e.g.:
//
//	{"name": "lab-switch", "stages": 8, "stage_sram_bits": 524288,
//	 "stage_tcam_bits": 65536, "stage_register_bits": 262144,
//	 "stage_tables": 8}
type Profile struct {
	Name string `json:"name"`
	// Stages is the number of physical match stages in the pipeline.
	Stages int `json:"stages"`
	// StageSRAMBits budgets exact-match storage plus action data per
	// stage; StageTCAMBits budgets ternary match storage per stage.
	StageSRAMBits int `json:"stage_sram_bits"`
	StageTCAMBits int `json:"stage_tcam_bits"`
	// StageRegisterBits budgets the stateful register file per stage
	// (register arrays are bound to the single stage that accesses them).
	StageRegisterBits int `json:"stage_register_bits"`
	// StageTables is the number of logical table slots per stage.
	StageTables int `json:"stage_tables"`
}

// Built-in profile names.
const (
	// DefaultTarget is the profile CLIs assume when -target is not given.
	DefaultTarget = "generic-16stage"
	// MiniTarget is a deliberately tight profile used by tests to force
	// placement failures on realistic programs.
	MiniTarget = "mini"
)

// registry holds the built-in profiles. generic-16stage approximates a
// mid-size RMT switch; tofino-like scales stage memory toward Tofino's
// published block counts (~120 SRAM blocks x 1K x 112b and 44 TCAM
// blocks x 512 x 44b across 12 stages); mini is intentionally cramped.
var registry = map[string]Profile{
	"generic-16stage": {
		Name:              "generic-16stage",
		Stages:            16,
		StageSRAMBits:     1 << 20, // 1 Mbit exact+action memory per stage
		StageTCAMBits:     1 << 18, // 256 Kbit ternary memory per stage
		StageRegisterBits: 1 << 19, // 512 Kbit stateful register file per stage
		StageTables:       16,
	},
	"tofino-like": {
		Name:              "tofino-like",
		Stages:            12,
		StageSRAMBits:     10 << 20, // ~10 Mbit per stage (1.3 MB SRAM/stage)
		StageTCAMBits:     44 * 512 * 44,
		StageRegisterBits: 2 << 20,
		StageTables:       16,
	},
	"mini": {
		Name:              "mini",
		Stages:            4,
		StageSRAMBits:     1 << 16, // 64 Kbit
		StageTCAMBits:     1 << 14, // 16 Kbit
		StageRegisterBits: 1 << 15, // 32 Kbit
		StageTables:       6,
	},
}

// Names returns the built-in profile names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Find resolves a -target argument: a built-in profile name, or a path
// to a JSON profile file (anything containing a path separator or a
// .json suffix). On failure it returns a positioned-at-zero P007
// diagnostic suitable for merging into a compile's diagnostic list.
func Find(target string) (Profile, *diag.Diagnostic) {
	if p, ok := registry[target]; ok {
		return p, nil
	}
	if strings.ContainsAny(target, "/\\") || strings.HasSuffix(target, ".json") {
		return loadFile(target)
	}
	return Profile{}, diag.Errorf(diag.PlaceProfile, 0, 0, "unknown target profile %q", target).
		WithHint("built-in profiles: %s; or pass a .json profile file", strings.Join(Names(), ", "))
}

// loadFile reads a JSON profile and validates its budgets.
func loadFile(path string) (Profile, *diag.Diagnostic) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, diag.Errorf(diag.PlaceProfile, 0, 0, "target profile %s: %v", path, err)
	}
	var p Profile
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Profile{}, diag.Errorf(diag.PlaceProfile, 0, 0, "target profile %s: %v", path, err).
			WithHint("fields: name, stages, stage_sram_bits, stage_tcam_bits, stage_register_bits, stage_tables")
	}
	if p.Name == "" {
		p.Name = path
	}
	if p.Stages <= 0 || p.StageSRAMBits <= 0 || p.StageTCAMBits < 0 ||
		p.StageRegisterBits < 0 || p.StageTables <= 0 {
		return Profile{}, diag.Errorf(diag.PlaceProfile, 0, 0,
			"target profile %s: budgets must be positive (stages=%d sram=%d tcam=%d reg=%d tables=%d)",
			path, p.Stages, p.StageSRAMBits, p.StageTCAMBits, p.StageRegisterBits, p.StageTables)
	}
	return p, nil
}
