package place

import (
	"fmt"
	"strings"
)

// Report renders the placement as a human-readable stage map with
// per-stage utilization percentages, the format behind mantisc -report:
//
//	placement: profile generic-16stage (16 stages) — FITS
//	stage  pipeline  tables                      sram        tcam        regs
//	    1  ingress   tiRoute, p4r_init           1.2%        4.0%        0%
//	...
func (pl *Placement) Report() string {
	var b strings.Builder
	verdict := "FITS"
	if !pl.Fits() {
		verdict = "DOES NOT FIT"
	}
	fmt.Fprintf(&b, "placement: profile %s (%d stages, %d b SRAM / %d b TCAM / %d b regs / %d tables per stage) — %s\n",
		pl.Profile.Name, pl.Profile.Stages, pl.Profile.StageSRAMBits, pl.Profile.StageTCAMBits,
		pl.Profile.StageRegisterBits, pl.Profile.StageTables, verdict)
	fmt.Fprintf(&b, "stages used: %d ingress + %d egress = %d of %d\n",
		pl.IngressStages, pl.EgressStages, pl.IngressStages+pl.EgressStages, pl.Profile.Stages)

	const rowFmt = "%5s  %-8s  %-44s %6s %6s %6s\n"
	fmt.Fprintf(&b, rowFmt, "stage", "pipeline", "tables (registers)", "sram", "tcam", "regs")
	for _, su := range pl.Stages {
		if len(su.Tables) == 0 && len(su.Registers) == 0 {
			continue
		}
		pipeline := "egress"
		if su.Stage <= pl.IngressStages {
			pipeline = "ingress"
		}
		label := strings.Join(su.Tables, ", ")
		if len(su.Registers) > 0 {
			label += " (" + strings.Join(su.Registers, ", ") + ")"
		}
		stageNo := fmt.Sprintf("%d", su.Stage)
		if su.Stage > pl.Profile.Stages {
			stageNo += "!" // overflow stage past the physical pipeline
		}
		// Wrap long table lists rather than truncating them.
		for len(label) > 44 {
			cut := strings.LastIndex(label[:44], ", ")
			if cut < 0 {
				break
			}
			fmt.Fprintf(&b, rowFmt, stageNo, pipeline, label[:cut+1], "", "", "")
			label = label[cut+2:]
			stageNo, pipeline = "", ""
		}
		fmt.Fprintf(&b, rowFmt, stageNo, pipeline, label,
			pct(su.SRAMBits, pl.Profile.StageSRAMBits),
			pct(su.TCAMBits, pl.Profile.StageTCAMBits),
			pct(su.RegisterBits, pl.Profile.StageRegisterBits))
	}
	if over := pl.overBudgetStages(); len(over) > 0 {
		fmt.Fprintf(&b, "overflow: %d table(s)/register(s) spilled past stage %d (marked !)\n",
			len(over), pl.Profile.Stages)
	}
	if n := pl.Diags.Len(); n > 0 {
		fmt.Fprintf(&b, "%d placement finding(s):\n", n)
		for _, d := range pl.Diags.Diags {
			fmt.Fprintf(&b, "  %s\n", d.Error())
		}
	}
	return b.String()
}
