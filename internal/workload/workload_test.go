package workload

import (
	"testing"
	"time"
)

func smallCfg() TraceConfig {
	return TraceConfig{
		Flows: 500, TotalPackets: 20000, Duration: 100 * time.Millisecond,
		ZipfS: 1.1, MinPktSize: 64, MaxPktSize: 1500, Sources: 64, Seed: 7,
	}
}

func TestGenerateShape(t *testing.T) {
	tr := Generate(smallCfg())
	if len(tr.Flows) != 500 {
		t.Fatalf("flows = %d", len(tr.Flows))
	}
	if n := len(tr.Packets); n < 19000 || n > 21000 {
		t.Fatalf("packets = %d, want approximately TotalPackets (20000)", n)
	}
	// Time-sorted.
	for i := 1; i < len(tr.Packets); i++ {
		if tr.Packets[i].Time < tr.Packets[i-1].Time {
			t.Fatal("packets not time-sorted")
		}
	}
	// All packets within duration.
	last := tr.Packets[len(tr.Packets)-1]
	if last.Time >= 100*time.Millisecond {
		t.Fatalf("packet at %v beyond duration", last.Time)
	}
}

func TestHeavyTail(t *testing.T) {
	tr := Generate(smallCfg())
	top := tr.TopFlows(50) // top 10% of flows
	var topBytes uint64
	for _, f := range top {
		topBytes += f.Bytes
	}
	frac := float64(topBytes) / float64(tr.TotalBytes())
	if frac < 0.5 {
		t.Fatalf("top 10%% flows carry %.2f of bytes, want heavy tail > 0.5", frac)
	}
	// Every flow sends at least one packet.
	for _, f := range tr.Flows {
		if f.Packets < 1 {
			t.Fatal("flow with zero packets")
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := Generate(smallCfg())
	b := Generate(smallCfg())
	if len(a.Packets) != len(b.Packets) {
		t.Fatal("nondeterministic packet count")
	}
	for i := range a.Packets {
		if a.Packets[i].Time != b.Packets[i].Time || a.Packets[i].Size != b.Packets[i].Size ||
			a.Packets[i].Flow.ID != b.Packets[i].Flow.ID {
			t.Fatal("nondeterministic trace")
		}
	}
	cfg := smallCfg()
	cfg.Seed = 99
	c := Generate(cfg)
	same := true
	for i := range a.Packets {
		if i < len(c.Packets) && a.Packets[i].Time != c.Packets[i].Time {
			same = false
			break
		}
	}
	if same && len(a.Packets) == len(c.Packets) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestAggregations(t *testing.T) {
	tr := Generate(smallCfg())
	var sum uint64
	for _, b := range tr.SenderBytes() {
		sum += b
	}
	if sum != tr.TotalBytes() {
		t.Fatal("SenderBytes does not partition total")
	}
	fb := tr.FlowBytes()
	sum = 0
	for _, b := range fb {
		sum += b
	}
	if sum != tr.TotalBytes() {
		t.Fatal("FlowBytes does not partition total")
	}
	// Flow bytes match packet sizes.
	perFlow := map[int]uint64{}
	for _, p := range tr.Packets {
		perFlow[p.Flow.ID] += uint64(p.Size)
	}
	for id, b := range perFlow {
		if fb[id] != b {
			t.Fatalf("flow %d: bytes %d != packet sum %d", id, fb[id], b)
		}
	}
}

func TestSourcesBound(t *testing.T) {
	tr := Generate(smallCfg())
	srcs := map[uint32]bool{}
	for _, f := range tr.Flows {
		srcs[f.Src] = true
	}
	if len(srcs) > 64 {
		t.Fatalf("distinct sources = %d, want <= 64", len(srcs))
	}
}

func TestDegenerateConfigs(t *testing.T) {
	if tr := Generate(TraceConfig{}); len(tr.Packets) != 0 {
		t.Fatal("zero config should be empty")
	}
	tr := Generate(TraceConfig{Flows: 3, TotalPackets: 9, Duration: time.Millisecond, Seed: 1})
	if len(tr.Packets) == 0 {
		t.Fatal("tiny trace empty")
	}
	for _, p := range tr.Packets {
		if p.Size < 64 {
			t.Fatalf("default min size not applied: %d", p.Size)
		}
	}
}

func TestTopFlowsOrdering(t *testing.T) {
	tr := Generate(smallCfg())
	top := tr.TopFlows(10)
	for i := 1; i < len(top); i++ {
		if top[i].Bytes > top[i-1].Bytes {
			t.Fatal("TopFlows not descending")
		}
	}
	if len(tr.TopFlows(100000)) != len(tr.Flows) {
		t.Fatal("TopFlows clamp")
	}
}

func TestDefaultTraceConfigScale(t *testing.T) {
	cfg := DefaultTraceConfig()
	if cfg.Flows == 0 || cfg.TotalPackets/cfg.Flows < 10 {
		t.Fatalf("default config implausible: %+v", cfg)
	}
}
