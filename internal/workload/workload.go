// Package workload generates synthetic traffic traces with the
// statistical shape of the CAIDA ISP-backbone trace used in the paper's
// Figure 14 experiment: a heavy-tailed (Zipf) flow size distribution
// where a few flows carry most bytes and a long tail of mice carries
// few packets each. The paper's 20-second blocks hold ~8.9 M packets
// across ~370 K flows; Generate reproduces that shape at any
// configurable scale so experiments stay laptop-sized.
package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Flow is one 5-tuple flow in a trace.
type Flow struct {
	ID      int
	Src     uint32
	Dst     uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
	// Packets and Bytes are the flow's totals over the trace.
	Packets int
	Bytes   uint64
}

// Packet is one trace record.
type Packet struct {
	Flow *Flow
	Time time.Duration
	Size int
}

// TraceConfig parameterizes Generate.
type TraceConfig struct {
	// Flows is the number of distinct flows.
	Flows int
	// TotalPackets is the approximate packet count (exact count may vary
	// slightly because every flow sends at least one packet).
	TotalPackets int
	// Duration is the trace length; packets spread uniformly within it.
	Duration time.Duration
	// ZipfS is the Zipf skew (weight of rank r is r^-s). Typical
	// backbone traffic fits s in [1.0, 1.3].
	ZipfS float64
	// MinPktSize/MaxPktSize bound packet sizes (bytes).
	MinPktSize int
	MaxPktSize int
	// Sources is the number of distinct source addresses; flows are
	// assigned sources round-robin weighted by rank so heavy flows
	// concentrate on few senders (the DoS use case's per-sender view).
	Sources int
	Seed    int64
}

// DefaultTraceConfig is a laptop-scale stand-in for one CAIDA block:
// same flow-size shape, ~24x fewer packets.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Flows:        15000,
		TotalPackets: 370000,
		Duration:     time.Second,
		ZipfS:        1.1,
		MinPktSize:   64,
		MaxPktSize:   1500,
		Sources:      2048,
		Seed:         1,
	}
}

// Trace is a generated packet trace, time-sorted.
type Trace struct {
	Flows   []*Flow
	Packets []Packet
}

// Generate builds a trace per cfg. Output is deterministic per seed.
func Generate(cfg TraceConfig) *Trace {
	if cfg.Flows <= 0 || cfg.TotalPackets <= 0 {
		return &Trace{}
	}
	if cfg.MinPktSize <= 0 {
		cfg.MinPktSize = 64
	}
	if cfg.MaxPktSize < cfg.MinPktSize {
		cfg.MaxPktSize = cfg.MinPktSize
	}
	if cfg.Sources <= 0 {
		cfg.Sources = cfg.Flows
	}
	if cfg.ZipfS <= 0 {
		cfg.ZipfS = 1.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Zipf weights over flow ranks.
	weights := make([]float64, cfg.Flows)
	sum := 0.0
	for r := 0; r < cfg.Flows; r++ {
		weights[r] = math.Pow(float64(r+1), -cfg.ZipfS)
		sum += weights[r]
	}

	tr := &Trace{Flows: make([]*Flow, cfg.Flows)}
	for r := 0; r < cfg.Flows; r++ {
		pkts := int(weights[r] / sum * float64(cfg.TotalPackets))
		if pkts < 1 {
			pkts = 1
		}
		tr.Flows[r] = &Flow{
			ID:      r,
			Src:     uint32(0x0A000000 + rng.Intn(cfg.Sources)),
			Dst:     uint32(0xC0A80000 + rng.Intn(1<<16)),
			SrcPort: uint16(1024 + rng.Intn(60000)),
			DstPort: uint16([]int{80, 443, 53, 123, 8080}[rng.Intn(5)]),
			Proto:   [2]uint8{6, 17}[rng.Intn(2)],
			Packets: pkts,
		}
	}

	total := 0
	for _, f := range tr.Flows {
		total += f.Packets
	}
	tr.Packets = make([]Packet, 0, total)
	for _, f := range tr.Flows {
		for i := 0; i < f.Packets; i++ {
			size := cfg.MinPktSize
			if cfg.MaxPktSize > cfg.MinPktSize {
				size += rng.Intn(cfg.MaxPktSize - cfg.MinPktSize + 1)
			}
			f.Bytes += uint64(size)
			tr.Packets = append(tr.Packets, Packet{
				Flow: f,
				Time: time.Duration(rng.Int63n(int64(cfg.Duration))),
				Size: size,
			})
		}
	}
	sort.Slice(tr.Packets, func(i, j int) bool { return tr.Packets[i].Time < tr.Packets[j].Time })
	return tr
}

// SenderBytes aggregates trace bytes per source address.
func (tr *Trace) SenderBytes() map[uint32]uint64 {
	out := make(map[uint32]uint64)
	for _, f := range tr.Flows {
		out[f.Src] += f.Bytes
	}
	return out
}

// FlowBytes returns per-flow byte totals indexed by flow ID.
func (tr *Trace) FlowBytes() map[int]uint64 {
	out := make(map[int]uint64, len(tr.Flows))
	for _, f := range tr.Flows {
		out[f.ID] = f.Bytes
	}
	return out
}

// TopFlows returns the n largest flows by bytes, descending.
func (tr *Trace) TopFlows(n int) []*Flow {
	s := append([]*Flow(nil), tr.Flows...)
	sort.Slice(s, func(i, j int) bool { return s[i].Bytes > s[j].Bytes })
	if n > len(s) {
		n = len(s)
	}
	return s[:n]
}

// TotalBytes sums all packet bytes in the trace.
func (tr *Trace) TotalBytes() uint64 {
	var b uint64
	for _, f := range tr.Flows {
		b += f.Bytes
	}
	return b
}
