package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig12xRow is one cell of the multi-client contention sweep: N legacy
// clients churning a table through bulk sessions while the Mantis agent
// runs its dialogue on a primary session, under one scheduling policy.
type Fig12xRow struct {
	Clients int
	Policy  string
	// Dialogue summarizes the agent's per-iteration latency — the
	// figure of merit Mantis cares about (reaction time).
	Dialogue stats.DurationStats
	// Legacy summarizes legacy ModifyEntry latency across all clients.
	Legacy stats.DurationStats
	// Rejected counts backpressure rejections across all sessions.
	Rejected uint64
}

// Fig12xResult is the full sweep plus derived headline numbers.
type Fig12xResult struct {
	Rows []Fig12xRow
}

// row finds the (clients, policy) cell.
func (r *Fig12xResult) row(n int, policy string) *Fig12xRow {
	for i := range r.Rows {
		if r.Rows[i].Clients == n && r.Rows[i].Policy == policy {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunFig12x extends Fig. 12 beyond the paper: instead of one legacy
// updater, N ∈ clients concurrent legacy clients hammer the driver
// through the control-plane service while the agent's dialogue runs,
// once under the priority scheduler and once under plain FIFO (the
// no-scheduler baseline). The dialogue-class latency should stay nearly
// flat under priority — a dialogue op waits for at most the one legacy
// op already occupying the channel — while under FIFO it queues behind
// every legacy head and degrades roughly linearly with N.
func RunFig12x(clients []int, dur time.Duration) (*Fig12xResult, error) {
	if dur <= 0 {
		dur = 20 * time.Millisecond
	}
	res := &Fig12xResult{}
	for _, policy := range []ctlplane.Policy{ctlplane.PolicyPriority, ctlplane.PolicyFIFO} {
		for _, n := range clients {
			row, err := runFig12xCell(n, policy, dur)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

func runFig12xCell(nClients int, policy ctlplane.Policy, dur time.Duration) (*Fig12xRow, error) {
	plan, err := compiler.CompileSource(fig11Src, compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s := sim.New(int64(nClients) + 1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		return nil, err
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	svc := ctlplane.New(s, drv, ctlplane.Options{Policy: policy})

	agent, _, err := core.NewSessionAgent(s, svc, 1, plan, core.Options{})
	if err != nil {
		return nil, err
	}
	agent.Start()

	var legacyLats []time.Duration
	for c := 0; c < nClients; c++ {
		c := c
		sess, err := svc.Open(ctlplane.SessionOptions{
			Name: fmt.Sprintf("legacy%d", c), Role: ctlplane.RoleLegacy,
		})
		if err != nil {
			return nil, err
		}
		s.Spawn(sess.Name(), func(p *sim.Proc) {
			h, err := sess.AddEntry(p, "legacy", rmt.Entry{
				Keys: []rmt.KeySpec{rmt.ExactKey(uint64(c))}, Action: "legacy_act", Data: []uint64{0},
			})
			if err != nil {
				panic(err)
			}
			rng := s.Rand()
			for i := 0; ; i++ {
				p.Sleep(time.Duration(rng.Intn(5000)) * time.Nanosecond)
				t0 := p.Now()
				if err := sess.ModifyEntry(p, "legacy", h, "legacy_act", []uint64{uint64(i)}); err != nil {
					panic(err)
				}
				legacyLats = append(legacyLats, p.Now().Sub(t0))
			}
		})
	}
	s.RunFor(dur)

	var rejected uint64
	for _, sess := range svc.Sessions() {
		rejected += sess.SessionStats().Rejected
	}
	return &Fig12xRow{
		Clients:  nClients,
		Policy:   policy.String(),
		Dialogue: stats.SummarizeDurations(agent.Stats().Latencies),
		Legacy:   stats.SummarizeDurations(legacyLats),
		Rejected: rejected,
	}, nil
}

// FormatFig12x renders the sweep as one table per policy plus the
// headline priority-vs-FIFO comparison at the largest client count.
func FormatFig12x(r *Fig12xResult) string {
	var b strings.Builder
	b.WriteString("Fig 12x — dialogue vs legacy latency, N legacy clients × scheduling policy\n")
	fmt.Fprintf(&b, "%10s %4s %14s %14s %14s %14s %9s\n",
		"policy", "N", "dialogue p50", "dialogue p99", "legacy p50", "legacy p99", "rejected")
	maxN := 0
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10s %4d %14v %14v %14v %14v %9d\n",
			row.Policy, row.Clients,
			row.Dialogue.Median, row.Dialogue.P99,
			row.Legacy.Median, row.Legacy.P99, row.Rejected)
		if row.Clients > maxN {
			maxN = row.Clients
		}
	}
	pr, ff := r.row(maxN, ctlplane.PolicyPriority.String()), r.row(maxN, ctlplane.PolicyFIFO.String())
	if pr != nil && ff != nil && pr.Dialogue.Median > 0 {
		fmt.Fprintf(&b, "at N=%d: FIFO dialogue p50 is %.2fx priority's, p99 %.2fx\n",
			maxN,
			float64(ff.Dialogue.Median)/float64(pr.Dialogue.Median),
			float64(ff.Dialogue.P99)/float64(pr.Dialogue.P99))
	}
	return b.String()
}
