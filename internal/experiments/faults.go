package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FaultRow summarizes one fault profile's run of the chaos scenario.
type FaultRow struct {
	Profile string

	// Agent-side recovery counters.
	Iterations    uint64
	Commits       uint64
	Retries       uint64
	Rollbacks     uint64
	Abandoned     uint64
	WatchdogTrips uint64
	Degraded      uint64
	RepairOps     uint64

	// Injector-side fault counters.
	InjectedErrors uint64
	InjectedSpikes uint64
	PartialBatches uint64
	StuckWaits     uint64

	// Iteration latency distribution (the reaction-latency cost of the
	// fault class) and the serializability audit.
	IterLatency stats.DurationStats
	Packets     int
	Violations  int

	// Crash-profile fields (zero for in-process fault classes). A crash
	// profile kills the primary outright, so its row reports the standby
	// takeover instead of in-process recovery: the classification of the
	// torn iteration and the crash-to-first-commit MTTR.
	Crashes         uint64
	TakeoverOutcome string
	TakeoverMTTR    time.Duration
}

// faultSweepSrc combines the two ingredients the chaos scenario needs:
// a polled register (so batched measurement reads are on the fault
// path) and two malleable tables updated together (so every packet
// audits cross-table serializability).
const faultSweepSrc = `
header_type h_t { fields { k : 8; o1 : 32; o2 : 32; port : 8; } }
header h_t hdr;
register qd { width : 32; instance_count : 8; }
action meas() { register_write(qd, hdr.port, standard_metadata.packet_length); }
action set1(v) { modify_field(hdr.o1, v); }
action set2(v) {
  modify_field(hdr.o2, v);
  modify_field(standard_metadata.egress_spec, 1);
}
table m { actions { meas; } default_action : meas; size : 1; }
malleable table t1 { reads { hdr.k : exact; } actions { set1; } size : 4; }
malleable table t2 { reads { hdr.k : exact; } actions { set2; } size : 4; }
reaction react(reg qd) { }
control ingress { apply(m); apply(t1); apply(t2); }
`

// RunFaultSweep runs the chaos scenario once per fault profile: the
// agent (with DefaultRecovery) updates two tables in lockstep every
// iteration while the injector disturbs the driver channel, and every
// forwarded packet checks that it observed a consistent (vv, config)
// snapshot.
func RunFaultSweep(seed int64) ([]FaultRow, error) {
	var rows []FaultRow
	for _, prof := range faults.Profiles() {
		var row *FaultRow
		var err error
		if prof.CrashEnabled() {
			// A crash is not survivable in-process: run the profile in the
			// failover rig, where a standby recovers from the journal.
			row, err = runCrashProfile(prof, seed)
		} else {
			row, err = runFaultProfile(prof, seed)
		}
		if err != nil {
			return nil, fmt.Errorf("profile %s: %w", prof.Name, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// runCrashProfile runs one crash profile through the takeover rig and
// reports the successor's dialogue counters alongside the takeover
// verdict.
func runCrashProfile(prof faults.Profile, seed int64) (*FaultRow, error) {
	r, err := buildTakeoverRig(prof, seed)
	if err != nil {
		return nil, err
	}
	r.run()
	pt, err := r.point(prof.CrashAtOp)
	if err != nil {
		return nil, err
	}
	succ := r.sb.Agent()
	ast := succ.Stats()
	row := &FaultRow{Profile: prof.Name}
	row.Iterations = ast.Iterations
	row.Commits = ast.Commits
	row.Retries = ast.Retries
	row.Rollbacks = ast.Rollbacks
	row.Abandoned = ast.Abandoned
	row.WatchdogTrips = ast.WatchdogTrips
	row.Degraded = ast.Degraded
	row.RepairOps = ast.RepairOps
	row.IterLatency = stats.SummarizeDurations(ast.Latencies)
	row.Packets = pt.Packets
	row.Violations = pt.Violations
	row.Crashes = r.inj.FaultStats().Crashes
	row.TakeoverOutcome = pt.Outcome
	row.TakeoverMTTR = pt.MTTR
	return row, nil
}

func runFaultProfile(prof faults.Profile, seed int64) (*FaultRow, error) {
	plan, err := compiler.CompileSource(faultSweepSrc, compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s := sim.New(seed)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		return nil, err
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	inj := faults.Wrap(s, drv, prof, seed)

	var h1, h2 core.UserHandle
	agent := core.NewAgent(s, inj, plan, core.Options{
		Recovery: core.DefaultRecovery(),
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			t1, _ := a.Table("t1")
			t2, _ := a.Table("t2")
			var err error
			if h1, err = t1.AddEntry(p, core.UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{0}}); err != nil {
				return err
			}
			h2, err = t2.AddEntry(p, core.UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set2", Data: []uint64{0}})
			return err
		},
	})
	gen := uint64(0)
	if err := agent.RegisterNativeReaction("react", func(ctx *core.Ctx) error {
		gen++
		t1, _ := ctx.Table("t1")
		t2, _ := ctx.Table("t2")
		if err := t1.ModifyEntry(h1, "set1", []uint64{gen}); err != nil {
			return err
		}
		return t2.ModifyEntry(h2, "set2", []uint64{gen})
	}); err != nil {
		return nil, err
	}

	// Let the prologue install cleanly; faults start shortly after.
	inj.SetEnabled(false)
	s.Schedule(50*sim.Microsecond, func() { inj.SetEnabled(true) })
	agent.Start()

	row := &FaultRow{Profile: prof.Name}
	sw.Tx = func(_ int, pkt *packet.Packet) {
		row.Packets++
		if pkt.GetName("hdr.o1") != pkt.GetName("hdr.o2") {
			row.Violations++
		}
	}
	i := 0
	tick := s.Every(200*sim.Nanosecond, func() {
		pkt := plan.Prog.Schema.New()
		pkt.Size = 64 + (i%8)*100
		pkt.SetName("hdr.k", 7)
		pkt.SetName("hdr.port", uint64(i%8))
		sw.Inject(0, pkt)
		i++
	})
	s.RunFor(5 * time.Millisecond)
	tick.Stop()
	agent.Stop()
	s.RunFor(time.Millisecond)
	if err := agent.Err(); err != nil {
		return nil, err
	}

	ast := agent.Stats()
	row.Iterations = ast.Iterations
	row.Commits = ast.Commits
	row.Retries = ast.Retries
	row.Rollbacks = ast.Rollbacks
	row.Abandoned = ast.Abandoned
	row.WatchdogTrips = ast.WatchdogTrips
	row.Degraded = ast.Degraded
	row.RepairOps = ast.RepairOps
	row.IterLatency = stats.SummarizeDurations(ast.Latencies)
	fst := inj.FaultStats()
	row.InjectedErrors = fst.InjectedErrors
	row.InjectedSpikes = fst.InjectedSpikes
	row.PartialBatches = fst.PartialBatches
	row.StuckWaits = fst.StuckWaits
	return row, nil
}

// FormatFaultSweep renders the sweep as a table.
func FormatFaultSweep(rows []FaultRow) string {
	var b strings.Builder
	b.WriteString("Fault injection sweep — dialogue robustness under driver-channel faults\n")
	b.WriteString("(two-table lockstep updates; every packet audits cross-table consistency)\n\n")
	fmt.Fprintf(&b, "%-14s %6s %7s %7s %6s %6s %5s %5s %8s %8s %10s %6s\n",
		"profile", "iters", "commits", "retries", "rollbk", "abandn", "wdog", "degr",
		"inj.err", "inj.flt", "iter p99", "viol")
	for _, r := range rows {
		otherFaults := r.InjectedSpikes + r.PartialBatches + r.StuckWaits
		fmt.Fprintf(&b, "%-14s %6d %7d %7d %6d %6d %5d %5d %8d %8d %10v %6d\n",
			r.Profile, r.Iterations, r.Commits, r.Retries, r.Rollbacks, r.Abandoned,
			r.WatchdogTrips, r.Degraded, r.InjectedErrors, otherFaults,
			r.IterLatency.P99, r.Violations)
	}
	b.WriteString("\nmean iteration latency per profile:\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s mean %v, p99 %v over %d iterations (%d packets audited)\n",
			r.Profile, r.IterLatency.Mean, r.IterLatency.P99, r.IterLatency.Count, r.Packets)
	}
	crashed := false
	for _, r := range rows {
		if r.Crashes > 0 {
			if !crashed {
				b.WriteString("\ncrash profiles (standby takeover; counters are the successor's):\n")
				crashed = true
			}
			fmt.Fprintf(&b, "  %-14s outcome %-22s MTTR %v\n", r.Profile, r.TakeoverOutcome, r.TakeoverMTTR)
		}
	}
	return b.String()
}
