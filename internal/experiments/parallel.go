package experiments

import (
	"sync"
	"sync/atomic"
)

// forEach runs fn(0..n-1) across a pool of workers goroutines and
// returns the error of the lowest-index failing job, if any.
//
// Each simulation trial is an independent deterministic simulator with
// its own seed, so trials can run concurrently without changing any
// result — as long as callers make fn write into index-addressed
// storage, which keeps the assembled output identical to the serial
// order regardless of scheduling. With workers <= 1 the jobs run
// serially on the calling goroutine, which is the reference order the
// parallel path must be indistinguishable from.
func forEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next int64 = -1
		errs       = make([]error, n)
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
