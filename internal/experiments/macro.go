package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/stats"
	"repro/internal/usecases"
	"repro/internal/workload"
)

// Fig14Result is the flow-size-estimation accuracy comparison.
type Fig14Result struct {
	TraceFlows   int
	TracePackets int
	Results      []baseline.EvalResult
}

// RunFig14 replays a CAIDA-shaped trace through every estimator. scale
// in (0,1] shrinks the trace from the paper's ~8.9M-packet block (1.0)
// for faster runs.
func RunFig14(scale float64, seed int64) (*Fig14Result, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("scale %v out of (0,1]", scale)
	}
	cfg := workload.TraceConfig{
		Flows:        int(370000 * scale),
		TotalPackets: int(8900000 * scale),
		Duration:     20 * time.Second,
		ZipfS:        1.1,
		MinPktSize:   64,
		MaxPktSize:   1500,
		Sources:      4096,
		Seed:         seed,
	}
	tr := workload.Generate(cfg)
	// The paper's Mantis sustains ~10µs sampling = ~1 in 5 packets on
	// its trace; scale the poll interval to keep the same 1-in-5 ratio.
	pktInterval := cfg.Duration / time.Duration(len(tr.Packets))
	mantisPoll := 5 * pktInterval

	// Scale the data-plane structures with the trace so the paper's
	// flows-per-counter pressure (370K flows : 8,192 counters) holds at
	// any -scale; at scale=1.0 these are exactly the paper's sizes.
	w8k := int(8192 * scale)
	if w8k < 64 {
		w8k = 64
	}
	ests := []baseline.Estimator{
		baseline.NewMantisSampler(mantisPoll),
		baseline.NewSFlow(30000, seed),
		baseline.NewCountMin(2, w8k, seed),
		baseline.NewCountMin(2, 2*w8k, seed),
		baseline.NewHashTable(w8k, seed),
		baseline.NewHashTable(2*w8k, seed),
	}
	res := &Fig14Result{TraceFlows: len(tr.Flows), TracePackets: len(tr.Packets)}
	for _, est := range ests {
		res.Results = append(res.Results, baseline.RunEstimator(tr, est))
	}
	return res, nil
}

// FormatFig14 renders the per-bucket mean relative errors.
func FormatFig14(r *Fig14Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14 — mean relative estimation error (%d flows, %d packets)\n", r.TraceFlows, r.TracePackets)
	if len(r.Results) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-16s", "estimator")
	for _, bk := range r.Results[0].Buckets {
		fmt.Fprintf(&b, " %12s", bk)
	}
	b.WriteString("\n")
	for i, res := range r.Results {
		name := res.Name
		// Disambiguate repeated estimators by size.
		switch i {
		case 2:
			name = "count-min/8K"
		case 3:
			name = "count-min/16K"
		case 4:
			name = "hashtable/8K"
		case 5:
			name = "hashtable/16K"
		}
		fmt.Fprintf(&b, "%-16s", name)
		for _, e := range res.MeanErr {
			fmt.Fprintf(&b, " %12.4f", e)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RunFig15 wraps the use-case runner.
func RunFig15(seed int64) (*usecases.Fig15Result, error) {
	return usecases.RunFig15(usecases.DefaultFig15Config(), seed)
}

// FormatFig15 renders the DoS timeline.
func FormatFig15(r *usecases.Fig15Result) string {
	var b strings.Builder
	b.WriteString("Fig 15 — DoS mitigation timeline\n")
	fmt.Fprintf(&b, "  flood start:        %v\n", r.FloodStart)
	fmt.Fprintf(&b, "  mitigation install: %v (detection latency %v)\n", r.BlockedAt, r.DetectionLatency)
	fmt.Fprintf(&b, "  benign goodput:     pre %.2f Gbps | during flood %.2f Gbps | recovered %.2f Gbps\n",
		r.PreGbps, r.FloodGbps, r.PostGbps)
	starts, sums := r.Goodput.Bucketize(300 * time.Microsecond)
	b.WriteString("  goodput (Gbps per 300µs bucket):\n")
	for i := range starts {
		gbps := sums[i] * 8 / 300e-6 / 1e9
		fmt.Fprintf(&b, "    t=%8v %6.2f %s\n", starts[i], gbps, strings.Repeat("#", int(gbps*4)))
	}
	return b.String()
}

// Fig16Sweep holds the reaction-time sweeps of Figs. 16a and 16b.
type Fig16Sweep struct {
	// ByTd maps measurement period -> reaction-time stats over trials.
	TdValues []time.Duration
	ByTd     []stats.DurationStats
	// ByEta maps eta -> reaction-time stats at fixed Td.
	EtaValues []float64
	ByEta     []stats.DurationStats
}

// RunFig16 sweeps the measurement period T_d (Fig. 16a) and the
// delivery expectation eta (Fig. 16b), with several failure phases per
// point to capture the variance from failure position in the window.
func RunFig16(trials int) (*Fig16Sweep, error) {
	return RunFig16Parallel(trials, 1)
}

// fig16Point is one parameter point of the Fig. 16 sweeps.
type fig16Point struct {
	td  time.Duration
	eta float64
	// byEta marks the point as part of the eta sweep (Fig. 16b) rather
	// than the T_d sweep (Fig. 16a).
	byEta bool
}

func fig16Points() []fig16Point {
	var pts []fig16Point
	for _, td := range []time.Duration{20 * time.Microsecond, 50 * time.Microsecond,
		100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond} {
		pts = append(pts, fig16Point{td: td, eta: 0.5})
	}
	for _, eta := range []float64{0.2, 0.4, 0.6, 0.8, 0.9} {
		pts = append(pts, fig16Point{td: 50 * time.Microsecond, eta: eta, byEta: true})
	}
	return pts
}

// RunFig16Parallel runs the Fig. 16 sweeps with up to workers trials in
// flight at once. Every (parameter point, trial) pair is an independent
// deterministic simulation seeded by its trial number, and reaction
// times land in slices indexed by (point, trial), so the result is
// bit-identical to the serial run (workers <= 1) for any worker count.
func RunFig16Parallel(trials, workers int) (*Fig16Sweep, error) {
	ports := []int{2, 3, 4, 5}
	pts := fig16Points()
	durs := make([][]time.Duration, len(pts))
	for i := range durs {
		durs[i] = make([]time.Duration, trials)
	}
	err := forEach(len(pts)*trials, workers, func(j int) error {
		pi, trial := j/trials, j%trials
		p := pts[pi]
		failAt := 300*time.Microsecond + time.Duration(trial)*p.td/time.Duration(trials)
		res, err := usecases.RunFig16(int64(trial+1), ports, 3, failAt, p.td, p.eta)
		if err != nil {
			return err
		}
		if !res.Detected {
			return fmt.Errorf("td=%v eta=%v trial %d: not detected", p.td, p.eta, trial)
		}
		durs[pi][trial] = res.ReactionTime
		return nil
	})
	if err != nil {
		return nil, err
	}
	sweep := &Fig16Sweep{}
	for i, p := range pts {
		st := stats.SummarizeDurations(durs[i])
		if p.byEta {
			sweep.EtaValues = append(sweep.EtaValues, p.eta)
			sweep.ByEta = append(sweep.ByEta, st)
		} else {
			sweep.TdValues = append(sweep.TdValues, p.td)
			sweep.ByTd = append(sweep.ByTd, st)
		}
	}
	return sweep, nil
}

// FormatFig16 renders the gray-failure sweeps.
func FormatFig16(s *Fig16Sweep) string {
	var b strings.Builder
	b.WriteString("Fig 16a — failure reaction time vs measurement period T_d (eta=0.5)\n")
	fmt.Fprintf(&b, "%12s %12s %12s %12s\n", "T_d", "median", "min", "max")
	for i, td := range s.TdValues {
		fmt.Fprintf(&b, "%12v %12v %12v %12v\n", td, s.ByTd[i].Median, s.ByTd[i].Min, s.ByTd[i].Max)
	}
	b.WriteString("\nFig 16b — failure reaction time vs eta (T_d=50µs)\n")
	fmt.Fprintf(&b, "%12s %12s %12s %12s\n", "eta", "median", "min", "max")
	for i, eta := range s.EtaValues {
		fmt.Fprintf(&b, "%12.1f %12v %12v %12v\n", eta, s.ByEta[i].Median, s.ByEta[i].Min, s.ByEta[i].Max)
	}
	return b.String()
}

// RunTable1 wraps the use-case inventory.
func RunTable1() (string, error) {
	rows, err := usecases.Table1()
	if err != nil {
		return "", err
	}
	return "Table 1 — use-case inventory (marginal cost over a basic router)\n" +
		usecases.FormatTable1(rows), nil
}
