// Package experiments regenerates every table and figure of the
// paper's evaluation (§8) against the simulated substrate. Each RunX
// function returns a formatted report; cmd/experiments is a thin CLI
// over them. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// microProgram builds a program with nSlots 64-bit measurement-style
// registers (2 instances each), one big register array, and a table for
// update benchmarks.
func microProgram(nSlots, arrayLen, tableSize int) *p4.Program {
	prog := p4.NewProgram("micro")
	prog.DefineStandardMetadata()
	k := prog.Schema.Define("h.k", 32)
	for i := 0; i < nSlots; i++ {
		prog.AddRegister(&p4.Register{Name: fmt.Sprintf("slot%d", i), Width: 64, Instances: 2})
	}
	prog.AddRegister(&p4.Register{Name: "bigarray", Width: 32, Instances: arrayLen})
	prog.AddAction(&p4.Action{
		Name:   "act",
		Params: []p4.Param{{Name: "v", Width: 32}},
		Body: []p4.Primitive{p4.ModifyField{
			Dst: prog.Schema.MustID(p4.FieldEgressSpec), DstName: p4.FieldEgressSpec, Src: p4.ParamOp(0, "v"),
		}},
	})
	prog.AddTable(&p4.Table{
		Name:        "tbl",
		Keys:        []p4.MatchKey{{FieldName: "h.k", Field: k, Width: 32, Kind: p4.MatchExact}},
		ActionNames: []string{"act"},
		Size:        tableSize,
	})
	prog.Ingress = []p4.ControlStmt{p4.Apply{Table: "tbl"}}
	return prog
}

// Fig10aRow is one point of the measurement-latency microbenchmark.
type Fig10aRow struct {
	Bytes        int
	FieldLatency time.Duration // packed 32/64-bit field-arg registers
	RegLatency   time.Duration // one register-array range
}

// RunFig10a measures raw measurement latency versus total state size,
// for field arguments (one packed register per 64-bit slot) and
// register-array arguments (a single DMA range).
func RunFig10a() ([]Fig10aRow, error) {
	sizes := []int{8, 16, 32, 64, 128, 256, 512}
	var rows []Fig10aRow
	for _, bytes := range sizes {
		slots := bytes / 8
		prog := microProgram(slots, 1024, 16)
		s := sim.New(1)
		sw, err := rmt.New(s, prog, rmt.DefaultConfig())
		if err != nil {
			return nil, err
		}
		drv := driver.New(s, sw, driver.DefaultCostModel())
		row := Fig10aRow{Bytes: bytes}
		s.Spawn("cp", func(p *sim.Proc) {
			// Field arguments: one request per packed register.
			reqs := make([]driver.ReadReq, slots)
			for i := range reqs {
				reqs[i] = driver.ReadReq{Reg: fmt.Sprintf("slot%d", i), Lo: 0, Hi: 1}
			}
			t0 := p.Now()
			if _, err := drv.BatchRead(p, reqs); err != nil {
				panic(err)
			}
			row.FieldLatency = p.Now().Sub(t0)

			// Register arguments: one contiguous range of the same size.
			t0 = p.Now()
			if _, err := drv.BatchRead(p, []driver.ReadReq{{Reg: "bigarray", Lo: 0, Hi: uint64(bytes / 4)}}); err != nil {
				panic(err)
			}
			row.RegLatency = p.Now().Sub(t0)
		})
		s.Run()
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig10a renders the Fig. 10a series.
func FormatFig10a(rows []Fig10aRow) string {
	var b strings.Builder
	b.WriteString("Fig 10a — measurement latency vs state size\n")
	fmt.Fprintf(&b, "%8s %14s %14s\n", "bytes", "field args", "register args")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %14v %14v\n", r.Bytes, r.FieldLatency, r.RegLatency)
	}
	return b.String()
}

// Fig10bRow is one point of the update-latency microbenchmark.
type Fig10bRow struct {
	Updates       int
	ScalarLatency time.Duration // malleable values/fields (one init write)
	TableLatency  time.Duration // table entry modifications
}

// RunFig10b measures raw update latency versus update count: scalar
// malleables collapse into a single init-table write; table entry
// modifications scale linearly.
func RunFig10b() ([]Fig10bRow, error) {
	counts := []int{1, 2, 4, 8, 16, 32, 64}
	var rows []Fig10bRow
	for _, n := range counts {
		prog := microProgram(1, 16, 128)
		s := sim.New(1)
		sw, err := rmt.New(s, prog, rmt.DefaultConfig())
		if err != nil {
			return nil, err
		}
		drv := driver.New(s, sw, driver.DefaultCostModel())
		row := Fig10bRow{Updates: n}
		n := n
		s.Spawn("cp", func(p *sim.Proc) {
			// Table mods: install n entries, memoize, then time n updates.
			handles := make([]rmt.EntryHandle, n)
			for i := 0; i < n; i++ {
				h, err := drv.AddEntry(p, "tbl", rmt.Entry{
					Keys: []rmt.KeySpec{rmt.ExactKey(uint64(i))}, Action: "act", Data: []uint64{1},
				})
				if err != nil {
					panic(err)
				}
				handles[i] = h
				drv.Memoize("tbl", h)
			}
			t0 := p.Now()
			for _, h := range handles {
				drv.ModifyEntry(p, "tbl", h, "act", []uint64{2})
			}
			row.TableLatency = p.Now().Sub(t0)

			// Scalar malleables: n values all live in the master init
			// action — one default-action write regardless of n.
			drv.Memoize("tbl", 0)
			t0 = p.Now()
			drv.SetDefaultAction(p, "tbl", &p4.ActionCall{Action: "act", Data: []uint64{3}})
			row.ScalarLatency = p.Now().Sub(t0)
		})
		s.Run()
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig10b renders the Fig. 10b series.
func FormatFig10b(rows []Fig10bRow) string {
	var b strings.Builder
	b.WriteString("Fig 10b — update latency vs number of updates\n")
	fmt.Fprintf(&b, "%8s %16s %14s\n", "updates", "scalar malleable", "table entries")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %16v %14v\n", r.Updates, r.ScalarLatency, r.TableLatency)
	}
	return b.String()
}

// fig11Src is a minimal reactive program: one malleable field updated
// per iteration (the workload of Fig. 11).
const fig11Src = `
header_type h_t { fields { a : 16; b : 16; } }
header h_t hdr;
malleable field fv { width : 16; init : hdr.a; alts { hdr.a, hdr.b } }
action use(port) {
  modify_field(standard_metadata.egress_spec, port);
  modify_field(hdr.a, ${fv});
}
malleable table t {
  actions { use; }
  size : 2;
}
action legacy_act(v) {
  modify_field(hdr.b, v);
}
table legacy {
  reads { hdr.a : exact; }
  actions { legacy_act; }
  size : 64;
}
reaction flip() {
  static int i = 0;
  i = i + 1;
  ${fv} = i & 1;
}
control ingress { apply(t); apply(legacy); }
`

// Fig11Row is one duty-cycle point.
type Fig11Row struct {
	Pacing        time.Duration
	Utilization   float64
	MeanIteration time.Duration
	// ReactionPeriod is the achieved loop granularity (pacing + work).
	ReactionPeriod time.Duration
}

// RunFig11 sweeps nanosleep pacing and reports the CPU-utilization /
// reaction-time tradeoff.
func RunFig11() ([]Fig11Row, error) {
	pacings := []time.Duration{0, 5 * time.Microsecond, 10 * time.Microsecond,
		20 * time.Microsecond, 50 * time.Microsecond, 100 * time.Microsecond, 500 * time.Microsecond}
	var rows []Fig11Row
	for _, pacing := range pacings {
		plan, err := compiler.CompileSource(fig11Src, compiler.DefaultOptions())
		if err != nil {
			return nil, err
		}
		s := sim.New(1)
		sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
		if err != nil {
			return nil, err
		}
		drv := driver.New(s, sw, driver.DefaultCostModel())
		agent := core.NewAgent(s, drv, plan, core.Options{Pacing: pacing, MaxIterations: 500})
		agent.Start()
		s.Run()
		if err := agent.Err(); err != nil {
			return nil, err
		}
		st := agent.Stats()
		elapsed := s.Now().Duration()
		xs := make([]float64, len(st.Latencies))
		for i, d := range st.Latencies {
			xs[i] = float64(d)
		}
		mean := time.Duration(stats.Mean(xs))
		rows = append(rows, Fig11Row{
			Pacing:         pacing,
			Utilization:    float64(st.Busy) / float64(elapsed),
			MeanIteration:  mean,
			ReactionPeriod: time.Duration(float64(elapsed) / float64(st.Iterations)),
		})
	}
	return rows, nil
}

// FormatFig11 renders the utilization/latency tradeoff.
func FormatFig11(rows []Fig11Row) string {
	var b strings.Builder
	b.WriteString("Fig 11 — CPU utilization vs reaction time (nanosleep pacing)\n")
	fmt.Fprintf(&b, "%12s %12s %14s %16s\n", "pacing", "utilization", "mean iter", "reaction period")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12v %11.1f%% %14v %16v\n", r.Pacing, r.Utilization*100, r.MeanIteration, r.ReactionPeriod)
	}
	return b.String()
}

// Fig12Result compares concurrent legacy-operation latency with and
// without the Mantis busy loop.
type Fig12Result struct {
	Without stats.DurationStats
	With    stats.DurationStats
	// MedianOverheadPct and P99OverheadPct are the relative increases
	// (paper: 4.64% and 6.45%).
	MedianOverheadPct float64
	P99OverheadPct    float64
}

// RunFig12 measures the latency of a continuous stream of legacy table
// updates issued from a second control-plane process, with and without
// Mantis's dialogue loop contending for the driver. Both parties go
// through the control-plane service — the agent on a primary session,
// the legacy updater on a bulk session — which is the production wiring
// (RunFig12x sweeps the same setup across client counts and policies).
func RunFig12() (*Fig12Result, error) {
	run := func(withMantis bool) ([]time.Duration, error) {
		plan, err := compiler.CompileSource(fig11Src, compiler.DefaultOptions())
		if err != nil {
			return nil, err
		}
		s := sim.New(1)
		sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
		if err != nil {
			return nil, err
		}
		drv := driver.New(s, sw, driver.DefaultCostModel())
		svc := ctlplane.New(s, drv, ctlplane.Options{})
		if withMantis {
			agent, _, err := core.NewSessionAgent(s, svc, 1, plan, core.Options{})
			if err != nil {
				return nil, err
			}
			agent.Start()
		}
		sess, err := svc.Open(ctlplane.SessionOptions{Name: "legacy-cp", Role: ctlplane.RoleLegacy})
		if err != nil {
			return nil, err
		}
		var lats []time.Duration
		s.Spawn("legacy-cp", func(p *sim.Proc) {
			h, err := sess.AddEntry(p, "legacy", rmt.Entry{
				Keys: []rmt.KeySpec{rmt.ExactKey(1)}, Action: "legacy_act", Data: []uint64{1},
			})
			if err != nil {
				panic(err)
			}
			rng := s.Rand()
			for i := 0; i < 2000; i++ {
				// A continuous but jittered stream: arrivals land at random
				// phases of Mantis's dialogue, producing the bimodal
				// blocked/unblocked split of Fig. 12.
				p.Sleep(time.Duration(rng.Intn(5000)) * time.Nanosecond)
				t0 := p.Now()
				if err := sess.ModifyEntry(p, "legacy", h, "legacy_act", []uint64{uint64(i)}); err != nil {
					panic(err)
				}
				lats = append(lats, p.Now().Sub(t0))
			}
		})
		s.RunFor(50 * time.Millisecond)
		return lats, nil
	}
	without, err := run(false)
	if err != nil {
		return nil, err
	}
	with, err := run(true)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{
		Without: stats.SummarizeDurations(without),
		With:    stats.SummarizeDurations(with),
	}
	res.MedianOverheadPct = 100 * (float64(res.With.Median)/float64(res.Without.Median) - 1)
	res.P99OverheadPct = 100 * (float64(res.With.P99)/float64(res.Without.P99) - 1)
	return res, nil
}

// FormatFig12 renders the legacy-contention comparison.
func FormatFig12(r *Fig12Result) string {
	var b strings.Builder
	b.WriteString("Fig 12 — legacy table-update latency with/without Mantis\n")
	fmt.Fprintf(&b, "  without: %v\n", r.Without)
	fmt.Fprintf(&b, "  with:    %v\n", r.With)
	fmt.Fprintf(&b, "  overhead: median %+.2f%%, p99 %+.2f%%\n", r.MedianOverheadPct, r.P99OverheadPct)
	return b.String()
}
