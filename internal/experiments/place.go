package experiments

import (
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/compiler/place"
	"repro/internal/fabric"
	"repro/internal/p4r/diag"
	"repro/internal/usecases"
)

// PlaceRow is one (program, profile) point of the placement sweep: does
// the program fit, how many stages does it consume, and how hot is the
// hottest stage for each resource class.
type PlaceRow struct {
	Program string
	Profile string
	Fits    bool
	// Errors counts placement violations (0 when Fits).
	Errors int
	// StagesUsed is ingress + egress stages consumed, including
	// overflow stages past the profile's physical count.
	StagesUsed int
	Stages     int
	// Max*Pct is the utilization of the hottest physical stage, in
	// percent of that stage's budget.
	MaxSRAMPct int
	MaxTCAMPct int
	MaxRegPct  int
}

// PlaceResult is the full placement sweep plus the detailed stage map
// for the fabric leaf program under the default profile (CI uploads it
// as an artifact).
type PlaceResult struct {
	Rows       []PlaceRow
	LeafReport string
}

// placePrograms lists the swept programs in report order.
var placePrograms = []struct {
	Name string
	Src  string
}{
	{"usecases/dos", usecases.DosP4R},
	{"usecases/gray", usecases.GrayP4R},
	{"usecases/hashpolar", usecases.HashPolarP4R},
	{"usecases/rlecn", usecases.RLECNP4R},
	{"usecases/base_router", usecases.BaseRouterP4R},
	{"fabric/leaf", fabric.LeafP4R},
	{"fabric/spine", fabric.SpineP4R},
}

// RunPlacement places every shipped program against every registered
// switch profile and reports fit plus peak per-stage utilization.
func RunPlacement() (*PlaceResult, error) {
	res := &PlaceResult{}
	for _, prog := range placePrograms {
		for _, profile := range place.Names() {
			row, pl, err := placePoint(prog.Name, prog.Src, profile)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, *row)
			if prog.Name == "fabric/leaf" && profile == place.DefaultTarget {
				res.LeafReport = pl.Report()
			}
		}
	}
	return res, nil
}

func placePoint(name, src, profile string) (*PlaceRow, *place.Placement, error) {
	opts := compiler.DefaultOptions()
	opts.Target = profile
	plan, err := compiler.CompileSource(src, opts)
	if plan == nil || plan.Placement == nil {
		return nil, nil, fmt.Errorf("%s on %s: %v", name, profile, err)
	}
	pl := plan.Placement
	row := &PlaceRow{
		Program:    name,
		Profile:    profile,
		Fits:       pl.Fits(),
		Errors:     countErrors(pl.Diags),
		StagesUsed: pl.IngressStages + pl.EgressStages,
		Stages:     pl.Profile.Stages,
	}
	for _, su := range pl.Stages {
		if su.Stage > pl.Profile.Stages {
			continue // overflow stages have no budget to be a percentage of
		}
		row.MaxSRAMPct = maxPct(row.MaxSRAMPct, su.SRAMBits, pl.Profile.StageSRAMBits)
		row.MaxTCAMPct = maxPct(row.MaxTCAMPct, su.TCAMBits, pl.Profile.StageTCAMBits)
		row.MaxRegPct = maxPct(row.MaxRegPct, su.RegisterBits, pl.Profile.StageRegisterBits)
	}
	return row, pl, nil
}

func countErrors(l *diag.List) int {
	n := 0
	for _, d := range l.Diags {
		if d.Severity == diag.Error {
			n++
		}
	}
	return n
}

func maxPct(cur, used, budget int) int {
	if budget <= 0 {
		return cur
	}
	p := (used*100 + budget - 1) / budget
	if p > cur {
		return p
	}
	return cur
}

// FormatPlacement renders the sweep as one table per profile.
func FormatPlacement(res *PlaceResult) string {
	var b strings.Builder
	b.WriteString("Placement — shipped programs vs switch profiles\n")
	fmt.Fprintf(&b, "%-22s %-16s %6s %8s %9s %9s %8s\n",
		"program", "profile", "fits", "stages", "maxSRAM", "maxTCAM", "maxReg")
	for _, r := range res.Rows {
		fits := "yes"
		if !r.Fits {
			fits = fmt.Sprintf("no(%d)", r.Errors)
		}
		fmt.Fprintf(&b, "%-22s %-16s %6s %5d/%-2d %8d%% %8d%% %7d%%\n",
			r.Program, r.Profile, fits, r.StagesUsed, r.Stages,
			r.MaxSRAMPct, r.MaxTCAMPct, r.MaxRegPct)
	}
	return b.String()
}
