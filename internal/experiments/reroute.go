package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// fig-reroute: fabric-wide failure resilience.
//
// Ring TCP traffic runs across a leaf–spine fabric (each leaf's paced
// senders stream to a receiver on the next leaf) while one uplink — or
// one whole spine — fails underneath it. Per-leaf Fig. 16-style gray
// detectors watch probe delivery on every uplink and export suspect
// events; the fabric coordinator merges the per-leaf evidence into a
// spine health view and reroutes every affected leaf's ECMP assignment
// off the suspect path through the lossy per-switch control channels.
// The sweep reports, per failure mode and fabric size, how deep the
// goodput dips, how fast the reaction chain runs (detect → all routes
// moved → goodput back), and how cleanly everything returns home after
// the heal.

// ReroutePoint is one (mode, fabric size) cell of the sweep.
type ReroutePoint struct {
	Mode   string
	Leaves int
	Spines int

	// PreGoodput is the steady delivered rate (bits/s, all receivers)
	// before the failure; DipGoodput the worst single bucket between
	// failure and recovery; PostGoodput the steady rate after the heal.
	PreGoodput  float64
	DipGoodput  float64
	PostGoodput float64

	// DetectLatency is failure → the first coordinator exclude-reroute;
	// RerouteLatency that trigger → the last route move committed;
	// RecoverLatency failure → goodput back above 90% of PreGoodput.
	DetectLatency  time.Duration
	RerouteLatency time.Duration
	RecoverLatency time.Duration

	// RestoreLatency is heal → the last restore route-move committed.
	RestoreLatency time.Duration

	// Recovery is steady goodput under the failure (back half of the
	// fail window, after reroute) as a fraction of PreGoodput.
	Recovery float64

	// RouteMoves counts route modifications across exclude + restore.
	RouteMoves uint64

	// GraySuspects/GrayClears are the coordinator's event totals.
	GraySuspects uint64
	GrayClears   uint64
}

// RerouteResult is the fig-reroute sweep.
type RerouteResult struct {
	Seed   int64
	Points []ReroutePoint
}

var rerouteModes = []fabric.RerouteMode{
	fabric.ModeLinkDown, fabric.ModeGray, fabric.ModeCrash,
}

// rerouteSizes mirrors the fig-fabric sweep sizes.
var rerouteSizes = []struct{ leaves, spines int }{
	{2, 2},
	{4, 2},
	{6, 3},
}

// RunReroute sweeps failure mode × fabric size with the workers cap of
// the -parallel flag. Each point is an independent simulator seeded
// from (seed, index) and written into index-addressed storage, so
// results are identical at any parallelism.
func RunReroute(seed int64, workers int) (*RerouteResult, error) {
	n := len(rerouteModes) * len(rerouteSizes)
	res := &RerouteResult{Seed: seed, Points: make([]ReroutePoint, n)}
	err := forEach(n, workers, func(i int) error {
		mode := rerouteModes[i/len(rerouteSizes)]
		sz := rerouteSizes[i%len(rerouteSizes)]
		label := fmt.Sprintf("%s %dx%d", mode, sz.leaves, sz.spines)
		s := sim.New(seed + int64(i))
		r, err := fabric.NewRerouteFabric(s, fabric.RerouteFabricConfig{
			Fabric: fabric.Config{Leaves: sz.leaves, Spines: sz.spines, Seed: seed + int64(i)*1000},
			Mode:   mode,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		if err := r.Run(time.Millisecond, 2*time.Millisecond, 2*time.Millisecond); err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}

		pre := r.Goodput(r.FailAt-sim.Time(800*time.Microsecond), r.FailAt)
		if pre <= 0 {
			return fmt.Errorf("%s: no pre-failure goodput", label)
		}
		first, lastDone, _, ok := r.RerouteSpan(true, r.FailAt)
		if !ok {
			return fmt.Errorf("%s: exclude reroute missing or incomplete", label)
		}
		rec := r.RecoveredAt(r.FailAt, r.HealAt, pre, 0.9)
		// The acceptance bound: goodput must come back to ≥90% of the
		// pre-failure rate while the failure is still in place.
		if rec == 0 {
			return fmt.Errorf("%s: goodput never recovered to 90%% of %.0f bps", label, pre)
		}
		mid := r.FailAt + (r.HealAt-r.FailAt)/2
		under := r.Goodput(mid, r.HealAt)
		if under < 0.9*pre {
			return fmt.Errorf("%s: steady goodput under failure %.0f < 90%% of pre %.0f",
				label, under, pre)
		}
		_, hDone, _, hOK := r.RerouteSpan(false, r.HealAt)
		if !hOK {
			return fmt.Errorf("%s: restore reroute missing or incomplete", label)
		}
		st := r.F.Coord.Stats()
		end := r.Sim.Now()
		res.Points[i] = ReroutePoint{
			Mode: string(mode), Leaves: sz.leaves, Spines: sz.spines,
			PreGoodput:     pre * 8,
			DipGoodput:     r.MinGoodput(r.FailAt, rec) * 8,
			PostGoodput:    r.Goodput(r.HealAt+sim.Time(500*time.Microsecond), end-sim.Time(300*time.Microsecond)) * 8,
			DetectLatency:  first.Sub(r.FailAt),
			RerouteLatency: lastDone.Sub(first),
			RecoverLatency: rec.Sub(r.FailAt),
			RestoreLatency: hDone.Sub(r.HealAt),
			Recovery:       under / pre,
			RouteMoves:     st.RouteMoves,
			GraySuspects:   st.GraySuspects,
			GrayClears:     st.GrayClears,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// FormatReroute renders the sweep.
func FormatReroute(res *RerouteResult) string {
	var b strings.Builder
	b.WriteString("Fabric failure resilience — detect, ECMP-exclude reroute, recover, restore\n")
	fmt.Fprintf(&b, "%-10s %6s %9s %9s %8s %8s %8s %8s %8s %6s\n",
		"mode", "fabric", "pre", "dip", "detect", "reroute", "recover", "restore", "recov%", "moves")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%-10s %4dx%-2d %8.2fG %8.2fG %8v %8v %8v %8v %7.1f%% %6d\n",
			p.Mode, p.Leaves, p.Spines, p.PreGoodput/1e9, p.DipGoodput/1e9,
			p.DetectLatency, p.RerouteLatency, p.RecoverLatency, p.RestoreLatency,
			p.Recovery*100, p.RouteMoves)
	}
	b.WriteString("\npre/dip: delivered goodput before the failure and at the worst bucket\n")
	b.WriteString("after it. detect: failure → first coordinator exclude-reroute; reroute:\n")
	b.WriteString("→ last route move committed; recover: → goodput back above 90% of pre;\n")
	b.WriteString("restore: heal → last route moved home. recov%: steady goodput under the\n")
	b.WriteString("failure as a fraction of pre.\n")
	return b.String()
}
