package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// AblationResult summarizes the design-choice ablations DESIGN.md
// calls out.
type AblationResult struct {
	// Three-phase vs two-phase: driver ops + latency to change one entry
	// in an N-entry configuration.
	ConfigSize     int
	ThreePhaseOps  uint64
	ThreePhaseTime time.Duration
	TwoPhaseOps    uint64
	TwoPhaseTime   time.Duration

	// Memoization/batching: mean dialogue iteration latency.
	IterOptimized time.Duration
	IterNoMemo    time.Duration
	IterNoBatch   time.Duration
	IterNeither   time.Duration
}

const ablationSrc = `
header_type h_t { fields { k : 16; v : 16; } }
header h_t hdr;
register r1 { width : 32; instance_count : 8; }
register r2 { width : 32; instance_count : 8; }
action touch() {
  register_increment(r1, 0, 1);
  register_increment(r2, 1, 1);
}
action setv(x) { modify_field(hdr.v, x); }
table toucher { actions { touch; } default_action : touch; size : 1; }
malleable table cfg {
  reads { hdr.k : exact; }
  actions { setv; }
  size : 64;
}
reaction watch(reg r1, reg r2, ing hdr.k, ing hdr.v) {
}
control ingress { apply(toucher); apply(cfg); }
`

// RunAblations measures the update-protocol and driver-optimization
// ablations.
func RunAblations() (*AblationResult, error) {
	res := &AblationResult{ConfigSize: 50}

	// ---- Three-phase (Mantis) one-entry change in a 50-entry config.
	{
		plan, err := compiler.CompileSource(ablationSrc, compiler.DefaultOptions())
		if err != nil {
			return nil, err
		}
		s := sim.New(1)
		sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
		if err != nil {
			return nil, err
		}
		drv := driver.New(s, sw, driver.DefaultCostModel())
		var handles []core.UserHandle
		var changed, captured bool
		var opsBefore uint64
		var agent *core.Agent
		agent = core.NewAgent(s, drv, plan, core.Options{
			AfterIteration: func(p *sim.Proc, a *core.Agent) {
				if changed && !captured {
					captured = true
					res.ThreePhaseOps = drv.Stats().TableOps - opsBefore
					res.ThreePhaseTime = a.Stats().LastIteration
					a.Stop()
				}
			},
			Prologue: func(p *sim.Proc, a *core.Agent) error {
				tbl, err := a.Table("cfg")
				if err != nil {
					return err
				}
				for i := 0; i < res.ConfigSize; i++ {
					h, err := tbl.AddEntry(p, core.UserEntry{
						Keys: []rmt.KeySpec{rmt.ExactKey(uint64(i))}, Action: "setv", Data: []uint64{1},
					})
					if err != nil {
						return err
					}
					handles = append(handles, h)
				}
				return nil
			},
		})
		if err := agent.RegisterNativeReaction("watch", func(ctx *core.Ctx) error {
			if changed {
				return nil
			}
			changed = true
			opsBefore = drv.Stats().TableOps
			tbl, _ := ctx.Table("cfg")
			return tbl.ModifyEntry(handles[0], "setv", []uint64{9})
		}); err != nil {
			return nil, err
		}
		agent.Start()
		s.RunFor(2 * time.Millisecond)
		agent.Stop()
		s.Run()
		if err := agent.Err(); err != nil {
			return nil, err
		}
	}

	// ---- Two-phase (full reinstall) one-entry change, same config size.
	{
		prog := p4.NewProgram("twophase-abl")
		prog.DefineStandardMetadata()
		k := prog.Schema.Define("h.k", 16)
		ver := prog.Schema.Define("m.ver", 32)
		prog.AddAction(&p4.Action{
			Name:   "set_ver",
			Params: []p4.Param{{Name: "v", Width: 32}},
			Body:   []p4.Primitive{p4.ModifyField{Dst: ver, DstName: "m.ver", Src: p4.ParamOp(0, "v")}},
		})
		prog.AddAction(&p4.Action{
			Name:   "setv",
			Params: []p4.Param{{Name: "x", Width: 16}},
			Body:   []p4.Primitive{p4.ModifyField{Dst: k, DstName: "h.k", Src: p4.ParamOp(0, "x")}},
		})
		prog.AddTable(&p4.Table{
			Name: "ver_tbl", ActionNames: []string{"set_ver"},
			DefaultAction: &p4.ActionCall{Action: "set_ver", Data: []uint64{0}}, Size: 1,
		})
		prog.AddTable(&p4.Table{
			Name: "cfg",
			Keys: []p4.MatchKey{
				{FieldName: "h.k", Field: k, Width: 16, Kind: p4.MatchExact},
				{FieldName: "m.ver", Field: ver, Width: 32, Kind: p4.MatchExact},
			},
			ActionNames: []string{"setv"},
		})
		prog.Ingress = []p4.ControlStmt{p4.Apply{Table: "ver_tbl"}, p4.Apply{Table: "cfg"}}
		s := sim.New(1)
		sw, err := rmt.New(s, prog, rmt.DefaultConfig())
		if err != nil {
			return nil, err
		}
		drv := driver.New(s, sw, driver.DefaultCostModel())
		tp := baseline.NewTwoPhase(drv, "cfg", "ver_tbl", "set_ver")
		rules := make([]baseline.Rule, res.ConfigSize)
		for i := range rules {
			rules[i] = baseline.Rule{Keys: []rmt.KeySpec{rmt.ExactKey(uint64(i))}, Action: "setv", Data: []uint64{1}}
		}
		s.Spawn("cp", func(p *sim.Proc) {
			if err := tp.Install(p, rules); err != nil {
				panic(err)
			}
			before := tp.Ops
			t0 := p.Now()
			rules[0].Data = []uint64{9}
			if err := tp.Install(p, rules); err != nil {
				panic(err)
			}
			res.TwoPhaseOps = tp.Ops - before
			res.TwoPhaseTime = p.Now().Sub(t0)
		})
		s.Run()
	}

	// ---- Memoization / batching ablation on the dialogue loop.
	iter := func(memo, batch bool) (time.Duration, error) {
		plan, err := compiler.CompileSource(ablationSrc, compiler.DefaultOptions())
		if err != nil {
			return 0, err
		}
		s := sim.New(1)
		sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
		if err != nil {
			return 0, err
		}
		drv := driver.New(s, sw, driver.DefaultCostModel())
		drv.SetMemoization(memo)
		agent := core.NewAgent(s, drv, plan, core.Options{MaxIterations: 200})
		agent.SetBatchedReads(batch)
		agent.Start()
		s.Run()
		if err := agent.Err(); err != nil {
			return 0, err
		}
		return agent.Stats().LastIteration, nil
	}
	var err error
	if res.IterOptimized, err = iter(true, true); err != nil {
		return nil, err
	}
	if res.IterNoMemo, err = iter(false, true); err != nil {
		return nil, err
	}
	if res.IterNoBatch, err = iter(true, false); err != nil {
		return nil, err
	}
	if res.IterNeither, err = iter(false, false); err != nil {
		return nil, err
	}
	return res, nil
}

// FormatAblations renders the ablation summary.
func FormatAblations(r *AblationResult) string {
	var b strings.Builder
	b.WriteString("Ablations — design choices called out in DESIGN.md\n\n")
	fmt.Fprintf(&b, "One-entry change in a %d-entry configuration:\n", r.ConfigSize)
	fmt.Fprintf(&b, "  Mantis three-phase: %3d driver ops, iteration latency %v\n", r.ThreePhaseOps, r.ThreePhaseTime)
	fmt.Fprintf(&b, "  Two-phase reinstall: %3d driver ops, %v\n\n", r.TwoPhaseOps, r.TwoPhaseTime)
	b.WriteString("Dialogue iteration latency vs driver optimizations:\n")
	fmt.Fprintf(&b, "  memoization + batching: %v\n", r.IterOptimized)
	fmt.Fprintf(&b, "  no memoization:         %v\n", r.IterNoMemo)
	fmt.Fprintf(&b, "  no batching:            %v\n", r.IterNoBatch)
	fmt.Fprintf(&b, "  neither:                %v\n", r.IterNeither)
	return b.String()
}
