package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ctlchan"
	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The fig-ctlchan experiment measures the dialogue over a message-based
// control channel (internal/ctlchan) instead of the in-process driver
// call path. Two sweeps:
//
//   - Reaction latency vs. loss: the full stack (agent -> ctlchan.Client
//     -> netsim.Link -> ctlchan.Server -> driver) under 0–5% frame loss,
//     reporting per-iteration latency distributions and the recovery
//     traffic (retransmits, dedup hits) that kept every mutation
//     at-most-once. The acceptance bar — p99 at 1% loss within 5x the
//     lossless p99 — is enforced here, not just eyeballed.
//
//   - Partition-heal recovery: periodic 300µs partitions every 700µs;
//     for each heal, the time until the agent's next commit landed. The
//     session is never restarted — degraded-mode abandons, then a
//     journal-vs-switch resync on heal, carry the same client through
//     every partition.

// ctlchanLinkDelay is the one-way wire delay of the simulated control
// link for both sweeps.
const ctlchanLinkDelay = 500 * time.Nanosecond

// CtlchanLossPoint is one loss rate's measurement.
type CtlchanLossPoint struct {
	// Loss is the per-frame, per-direction drop probability.
	Loss float64

	// Iterations/Commits/Degraded are the agent's dialogue counters.
	Iterations uint64
	Commits    uint64
	Degraded   uint64

	// Ops/Retransmits/Timeouts are the client ledger; DedupHits and
	// MutationsExecuted are the server's (at-most-once evidence: the
	// duplicates the dedup cache absorbed instead of re-executing).
	Ops               uint64
	Retransmits       uint64
	Timeouts          uint64
	DedupHits         uint64
	MutationsExecuted uint64

	// Latency is the per-iteration reaction latency distribution, and
	// P99VsClean its p99 as a multiple of the lossless point's.
	Latency    stats.DurationStats
	P99VsClean float64

	// Packets and Violations audit cross-table serializability.
	Packets    int
	Violations int
}

// CtlchanPartitionResult summarizes the partition-heal sweep.
type CtlchanPartitionResult struct {
	// Partitions is the number of healed partition windows measured.
	Partitions int
	// Recovery is the heal-to-next-commit latency distribution.
	Recovery stats.DurationStats
	// Resyncs counts journal-vs-switch audits after degraded abandons;
	// Timeouts the operations the partitions degraded.
	Resyncs  uint64
	Timeouts uint64
	Commits  uint64
	// SessionEpoch must still be the original epoch at the end: every
	// recovery happened inside one session, with no restart.
	SessionEpoch uint64

	Packets    int
	Violations int
}

// CtlchanResult is the full experiment.
type CtlchanResult struct {
	LinkDelay time.Duration
	Points    []CtlchanLossPoint
	Partition CtlchanPartitionResult
}

// ctlchanRig is the message-channel stack under the fault-sweep
// workload (polled register + lock-step two-table updates).
type ctlchanRig struct {
	sim   *sim.Simulator
	sw    *rmt.Switch
	link  *netsim.Link
	srv   *ctlchan.Server
	cli   *ctlchan.Client
	agent *core.Agent

	packets     int
	violations  int
	commitTimes []sim.Time
}

// buildCtlchanRig wires the stack; the link starts clean (so the
// prologue installs over a working wire) and swaps to prof at 50µs.
func buildCtlchanRig(prof faults.LinkProfile, seed int64) (*ctlchanRig, error) {
	plan, err := compiler.CompileSource(faultSweepSrc, compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s := sim.New(seed)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		return nil, err
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	link := netsim.NewLink(s, ctlchanLinkDelay, faults.LinkNone(), seed)
	srv := ctlchan.NewServer(s)
	srv.Attach(link, netsim.LinkSideB, 1, 1, drv)
	cli := ctlchan.NewClient(s, link, netsim.LinkSideA, ctlchan.ClientOptions{Session: 1, Epoch: 1, Meta: drv})
	s.Schedule(50*time.Microsecond, func() { link.SetProfile(prof) })

	r := &ctlchanRig{sim: s, sw: sw, link: link, srv: srv, cli: cli}
	var h1, h2 core.UserHandle
	gen := uint64(0)
	var lastCommits uint64
	r.agent = core.NewAgent(s, cli, plan, core.Options{
		Recovery: core.RecoveryForChannel(cli.RTT()),
		Journal:  &core.JournalConfig{Store: journal.NewMemStore()},
		AfterIteration: func(p *sim.Proc, a *core.Agent) {
			if c := a.Stats().Commits; c > lastCommits {
				lastCommits = c
				r.commitTimes = append(r.commitTimes, p.Now())
			}
		},
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			t1, _ := a.Table("t1")
			t2, _ := a.Table("t2")
			var err error
			if h1, err = t1.AddEntry(p, core.UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{0}}); err != nil {
				return err
			}
			h2, err = t2.AddEntry(p, core.UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set2", Data: []uint64{0}})
			return err
		},
	})
	if err := r.agent.RegisterNativeReaction("react", func(ctx *core.Ctx) error {
		gen++
		t1, _ := ctx.Table("t1")
		t2, _ := ctx.Table("t2")
		if err := t1.ModifyEntry(h1, "set1", []uint64{gen}); err != nil {
			return err
		}
		return t2.ModifyEntry(h2, "set2", []uint64{gen})
	}); err != nil {
		return nil, err
	}
	sw.Tx = func(_ int, pkt *packet.Packet) {
		r.packets++
		if pkt.GetName("hdr.o1") != pkt.GetName("hdr.o2") {
			r.violations++
		}
	}
	return r, nil
}

// run drives traffic for d, then stops and drains.
func (r *ctlchanRig) run(d time.Duration) {
	r.agent.Start()
	i := 0
	tick := r.sim.Every(200*sim.Nanosecond, func() {
		pkt := r.sw.Program().Schema.New()
		pkt.Size = 64 + (i%8)*100
		pkt.SetName("hdr.k", 7)
		pkt.SetName("hdr.port", uint64(i%8))
		r.sw.Inject(0, pkt)
		i++
	})
	r.sim.RunFor(d)
	tick.Stop()
	r.agent.Stop()
	r.sim.RunFor(2 * time.Millisecond)
}

// check fails on any outcome the experiment's numbers would paper over.
func (r *ctlchanRig) check(label string) error {
	if err := r.agent.Err(); err != nil {
		return fmt.Errorf("%s: agent died: %w", label, err)
	}
	if r.violations != 0 {
		return fmt.Errorf("%s: %d/%d packets observed mixed cross-table state", label, r.violations, r.packets)
	}
	st := r.agent.Stats()
	if st.Commits == 0 || r.packets == 0 {
		return fmt.Errorf("%s: no progress (commits=%d packets=%d)", label, st.Commits, r.packets)
	}
	if cs, ss := r.cli.ChanStats(), r.srv.Stats(); ss.MutationsExecuted > cs.Ops {
		return fmt.Errorf("%s: more mutations executed (%d) than ops issued (%d)", label, ss.MutationsExecuted, cs.Ops)
	}
	return nil
}

// RunCtlchan runs both sweeps and enforces the latency bound.
func RunCtlchan(seed int64) (*CtlchanResult, error) {
	res := &CtlchanResult{LinkDelay: ctlchanLinkDelay}

	losses := []float64{0, 0.005, 0.01, 0.02, 0.05}
	for _, loss := range losses {
		prof := faults.LinkProfile{Name: fmt.Sprintf("loss-%.1f%%", loss*100), Loss: loss}
		r, err := buildCtlchanRig(prof, seed)
		if err != nil {
			return nil, err
		}
		r.run(5 * time.Millisecond)
		if err := r.check(prof.Name); err != nil {
			return nil, err
		}
		st, cs, ss := r.agent.Stats(), r.cli.ChanStats(), r.srv.Stats()
		pt := CtlchanLossPoint{
			Loss:              loss,
			Iterations:        st.Iterations,
			Commits:           st.Commits,
			Degraded:          st.Degraded,
			Ops:               cs.Ops,
			Retransmits:       cs.Retransmits,
			Timeouts:          cs.Timeouts,
			DedupHits:         ss.DedupHits,
			MutationsExecuted: ss.MutationsExecuted,
			Latency:           stats.SummarizeDurations(st.Latencies),
			Packets:           r.packets,
			Violations:        r.violations,
		}
		if clean := res.Points; len(clean) > 0 && clean[0].Latency.P99 > 0 {
			pt.P99VsClean = float64(pt.Latency.P99) / float64(clean[0].Latency.P99)
		} else {
			pt.P99VsClean = 1
		}
		res.Points = append(res.Points, pt)
	}
	// The acceptance bound: reacting over a 1%-lossy wire costs at most
	// 5x the lossless p99 iteration latency.
	for _, pt := range res.Points {
		if pt.Loss == 0.01 && pt.P99VsClean > 5 {
			return nil, fmt.Errorf("p99 at 1%% loss is %.1fx lossless (%v vs %v), above the 5x bound",
				pt.P99VsClean, pt.Latency.P99, res.Points[0].Latency.P99)
		}
	}

	// Partition-heal: periodic 300µs outages, decisively longer than the
	// client's op deadline (~110µs on this link), so in-flight operations
	// degrade mid-partition instead of riding their backoff across the
	// heal — the regime where the agent must abandon, audit, and resync.
	prof := faults.LinkProfile{
		Name:           "partition-300us",
		PartitionEvery: 700 * time.Microsecond,
		PartitionFor:   300 * time.Microsecond,
	}
	r, err := buildCtlchanRig(prof, seed)
	if err != nil {
		return nil, err
	}
	const runFor = 5 * time.Millisecond
	r.run(runFor)
	if err := r.check(prof.Name); err != nil {
		return nil, err
	}
	st, cs, ss := r.agent.Stats(), r.cli.ChanStats(), r.srv.Stats()
	if st.Resyncs == 0 {
		return nil, fmt.Errorf("partitions healed but the agent never resynced: %+v", st)
	}
	// Heal instants of the periodic windows [E, E+F), [2E+F, 2E+2F), …
	period := prof.PartitionEvery + prof.PartitionFor
	var recoveries []time.Duration
	healed := 0
	for k := 1; ; k++ {
		heal := sim.Time(0).Add(time.Duration(k) * period)
		if heal.Duration() >= runFor {
			break
		}
		healed++
		for _, ct := range r.commitTimes {
			if ct >= heal {
				recoveries = append(recoveries, ct.Sub(heal))
				break
			}
		}
	}
	if len(recoveries) == 0 {
		return nil, fmt.Errorf("no commit ever followed a partition heal")
	}
	res.Partition = CtlchanPartitionResult{
		Partitions:   healed,
		Recovery:     stats.SummarizeDurations(recoveries),
		Resyncs:      st.Resyncs,
		Timeouts:     cs.Timeouts,
		Commits:      st.Commits,
		SessionEpoch: ss.Epoch,
		Packets:      r.packets,
		Violations:   r.violations,
	}
	if res.Partition.SessionEpoch != 1 {
		return nil, fmt.Errorf("session epoch rose to %d — recovery restarted the session", res.Partition.SessionEpoch)
	}
	return res, nil
}

// FormatCtlchan renders both sweeps.
func FormatCtlchan(res *CtlchanResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Message control channel — reaction latency vs. loss (%v one-way link)\n", res.LinkDelay)
	fmt.Fprintf(&b, "%7s %6s %7s %6s %7s %6s %6s %9s %9s %9s %7s %5s\n",
		"loss", "iters", "commits", "degr", "retx", "tmo", "dedup", "mean", "p99", "max", "p99/0%", "viol")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%6.1f%% %6d %7d %6d %7d %6d %6d %9v %9v %9v %6.2fx %5d\n",
			p.Loss*100, p.Iterations, p.Commits, p.Degraded, p.Retransmits, p.Timeouts, p.DedupHits,
			p.Latency.Mean, p.Latency.P99, p.Latency.Max, p.P99VsClean, p.Violations)
	}
	pr := res.Partition
	b.WriteString("\nPartition-heal recovery (300µs partitions every 700µs, one session throughout):\n")
	fmt.Fprintf(&b, "  %d partitions healed; heal-to-commit: mean %v, p99 %v, max %v\n",
		pr.Partitions, pr.Recovery.Mean, pr.Recovery.P99, pr.Recovery.Max)
	fmt.Fprintf(&b, "  resyncs %d, degraded ops %d, commits %d, epoch %d, violations %d/%d\n",
		pr.Resyncs, pr.Timeouts, pr.Commits, pr.SessionEpoch, pr.Violations, pr.Packets)
	return b.String()
}
