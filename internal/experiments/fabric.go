package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// fig-fabric: network-wide reactions on a leaf–spine fabric.
//
// For each fabric size, one DoS scenario runs end to end: benign TCP
// senders on every leaf converge on a victim host, a flood enters at a
// spine border port, the victim leaf's own Mantis agent detects and
// blocks locally, and the fabric coordinator escalates the block into
// upstream filters on every other switch over each switch's lossy
// control channel. The sweep reports the reaction chain's latency
// decomposition (detect → spines filtered → all filtered), the
// fraction of attack traffic removed from the victim leaf's trunks,
// and how well the coordinator's merged per-leaf heavy-hitter
// estimates recover the true top senders.

// FabricPoint is one fabric size's result.
type FabricPoint struct {
	Leaves   int
	Spines   int
	Switches int

	// DetectLatency is flood start → the victim leaf's block event;
	// SpineLatency that event → the last spine filter committed (the
	// upstream path is cut here); FullLatency → every switch filtered.
	DetectLatency time.Duration
	SpineLatency  time.Duration
	FullLatency   time.Duration

	// Suppression is the fractional drop in attack-packet arrival rate
	// at the victim leaf's trunks after the spine filters, vs before.
	Suppression float64

	// AttackArrivals counts attack packets that reached the victim
	// leaf's trunks over the whole run.
	AttackArrivals int

	// HHRecall is |coordinator top-k ∩ true top-k| / k over the benign
	// senders (k = HHK), with truth from delivered bytes.
	HHRecall float64
	HHK      int

	// Coordinator activity for the run.
	Events         uint64
	Blocks         uint64
	FilterInstalls uint64
}

// FabricResult is the fig-fabric sweep.
type FabricResult struct {
	Seed   int64
	Points []FabricPoint
}

// fabricSizes is the sweep: 4, 6, and 9 switches.
var fabricSizes = []struct{ leaves, spines int }{
	{2, 2},
	{4, 2},
	{6, 3},
}

const fabricHHK = 5

// RunFabric sweeps fabric sizes with the workers cap of the -parallel
// flag. Each point is an independent simulator seeded from (seed,
// index) and written into index-addressed storage, so results are
// identical at any parallelism.
func RunFabric(seed int64, workers int) (*FabricResult, error) {
	res := &FabricResult{Seed: seed, Points: make([]FabricPoint, len(fabricSizes))}
	err := forEach(len(fabricSizes), workers, func(i int) error {
		sz := fabricSizes[i]
		label := fmt.Sprintf("%dx%d", sz.leaves, sz.spines)
		s := sim.New(seed + int64(i))
		d, err := fabric.NewDosFabric(s, fabric.DosFabricConfig{
			Fabric: fabric.Config{Leaves: sz.leaves, Spines: sz.spines, Seed: seed + int64(i)*1000},
		})
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		if err := d.Run(2*time.Millisecond, 4*time.Millisecond); err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		esc := d.Escalation()
		if esc == nil {
			return fmt.Errorf("%s: attacker never escalated", label)
		}
		if !esc.Complete() {
			return fmt.Errorf("%s: escalation incomplete", label)
		}
		sup, err := d.Suppression(s.Now())
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		// The acceptance bound: the escalation must remove at least 90%
		// of attack traffic from the victim leaf's trunks.
		if sup < 0.9 {
			return fmt.Errorf("%s: suppression %.3f below the 0.9 bound", label, sup)
		}
		st := d.F.Coord.Stats()
		res.Points[i] = FabricPoint{
			Leaves: sz.leaves, Spines: sz.spines, Switches: sz.leaves + sz.spines,
			DetectLatency:  esc.DetectedAt.Sub(d.FloodStart),
			SpineLatency:   esc.SpinesDoneAt.Sub(esc.DetectedAt),
			FullLatency:    esc.AllDoneAt.Sub(esc.DetectedAt),
			Suppression:    sup,
			AttackArrivals: len(d.AttackArrivals),
			HHRecall:       fabricHHRecall(d, fabricHHK),
			HHK:            fabricHHK,
			Events:         st.Events,
			Blocks:         st.Blocks,
			FilterInstalls: st.FilterInstalls,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// fabricHHRecall compares the coordinator's merged top-k against the
// true top-k senders by delivered bytes.
func fabricHHRecall(d *fabric.DosFabric, k int) float64 {
	truth := make([]fabric.HHEntry, 0, len(d.DeliveredBySrc))
	for src, b := range d.DeliveredBySrc {
		truth = append(truth, fabric.HHEntry{Src: src, Bytes: b})
	}
	if len(truth) < k {
		k = len(truth)
	}
	if k == 0 {
		return 0
	}
	// Same ordering as Coordinator.TopK: bytes desc, src asc on ties.
	for i := 1; i < len(truth); i++ {
		for j := i; j > 0 && (truth[j].Bytes > truth[j-1].Bytes ||
			(truth[j].Bytes == truth[j-1].Bytes && truth[j].Src < truth[j-1].Src)); j-- {
			truth[j], truth[j-1] = truth[j-1], truth[j]
		}
	}
	want := make(map[uint64]bool, k)
	for _, e := range truth[:k] {
		want[e.Src] = true
	}
	// The coordinator's raw top-k leads with the attacker and the
	// victim's ACK stream — correctly, they ARE the heaviest sources —
	// so restrict its view to benign senders before comparing against
	// benign-sender truth.
	hits, seen := 0, 0
	for _, e := range d.F.Coord.TopK(len(d.DeliveredBySrc) + 8) {
		if _, benign := d.DeliveredBySrc[e.Src]; !benign {
			continue
		}
		if seen++; seen > k {
			break
		}
		if want[e.Src] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// FormatFabric renders the sweep.
func FormatFabric(res *FabricResult) string {
	var b strings.Builder
	b.WriteString("Fabric-wide reaction — DoS escalation across a leaf–spine fabric\n")
	fmt.Fprintf(&b, "%8s %3s %8s %10s %10s %10s %8s %8s %7s %7s %9s\n",
		"fabric", "sw", "detect", "to-spines", "to-all", "suppress", "arrives", "hh-rec", "events", "blocks", "installs")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%7dx%-3d%2d %8v %10v %10v %9.1f%% %8d %7.0f%% %7d %7d %9d\n",
			p.Leaves, p.Spines, p.Switches, p.DetectLatency, p.SpineLatency, p.FullLatency,
			p.Suppression*100, p.AttackArrivals, p.HHRecall*100, p.Events, p.Blocks, p.FilterInstalls)
	}
	b.WriteString("\ndetect: flood start → victim leaf's local block; to-spines: block → last\n")
	b.WriteString("spine filter committed (upstream path cut); to-all: block → every switch\n")
	b.WriteString("filtered. suppress: attack arrival-rate drop at the victim leaf's trunks.\n")
	return b.String()
}
