package experiments

import (
	"testing"
	"time"

	"repro/internal/ctlplane"
)

func TestFig12xPriorityBeatsFIFO(t *testing.T) {
	res, err := RunFig12x([]int{1, 4, 8}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Dialogue.Count == 0 || row.Legacy.Count == 0 {
			t.Fatalf("empty cell: %+v", row)
		}
		if row.Rejected != 0 {
			t.Fatalf("synchronous clients should never overflow a queue: %+v", row)
		}
	}
	prio := ctlplane.PolicyPriority.String()
	fifo := ctlplane.PolicyFIFO.String()

	// The headline: at the largest client count, dialogue latency under
	// FIFO measurably exceeds dialogue latency under priority, at the
	// median and in the tail.
	p8, f8 := res.row(8, prio), res.row(8, fifo)
	if p8 == nil || f8 == nil {
		t.Fatal("missing N=8 rows")
	}
	if f8.Dialogue.Median <= p8.Dialogue.Median {
		t.Fatalf("FIFO dialogue p50 %v not worse than priority %v at N=8",
			f8.Dialogue.Median, p8.Dialogue.Median)
	}
	if f8.Dialogue.P99 <= p8.Dialogue.P99 {
		t.Fatalf("FIFO dialogue p99 %v not worse than priority %v at N=8",
			f8.Dialogue.P99, p8.Dialogue.P99)
	}

	// Degradation from N=1 to N=8 must be steeper under FIFO: priority
	// isolates the dialogue from client count, FIFO does not.
	p1, f1 := res.row(1, prio), res.row(1, fifo)
	prioGrowth := float64(p8.Dialogue.Median) / float64(p1.Dialogue.Median)
	fifoGrowth := float64(f8.Dialogue.Median) / float64(f1.Dialogue.Median)
	if fifoGrowth <= prioGrowth {
		t.Fatalf("dialogue p50 growth 1→8 clients: fifo %.2fx <= priority %.2fx", fifoGrowth, prioGrowth)
	}

	// Priority must not starve the bulk class: legacy clients keep
	// completing ops under both policies.
	if p8.Legacy.Count < 100 {
		t.Fatalf("legacy starved under priority: %d ops", p8.Legacy.Count)
	}
	if FormatFig12x(res) == "" {
		t.Fatal("format empty")
	}
}
