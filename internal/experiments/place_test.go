package experiments

import (
	"strings"
	"testing"

	"repro/internal/compiler/place"
)

// TestPlacementSweep pins the headline placement claims: every shipped
// program fits every registered profile (the fabric scale claims are
// anchored to hardware-like budgets), utilization is non-trivial on the
// tight mini profile, and the leaf stage-map artifact is produced.
func TestPlacementSweep(t *testing.T) {
	res, err := RunPlacement()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(placePrograms) * len(place.Names())
	if len(res.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(res.Rows), wantRows)
	}
	var miniSRAM int
	for _, r := range res.Rows {
		if !r.Fits || r.Errors != 0 {
			t.Errorf("%s on %s: does not fit (%d errors)", r.Program, r.Profile, r.Errors)
		}
		if r.StagesUsed < 1 || r.StagesUsed > r.Stages {
			t.Errorf("%s on %s: %d stages used of %d", r.Program, r.Profile, r.StagesUsed, r.Stages)
		}
		if r.Profile == place.MiniTarget && r.MaxSRAMPct > miniSRAM {
			miniSRAM = r.MaxSRAMPct
		}
	}
	if miniSRAM == 0 {
		t.Error("mini profile shows zero SRAM utilization; sweep is not measuring anything")
	}
	if !strings.Contains(res.LeafReport, "FITS") || !strings.Contains(res.LeafReport, place.DefaultTarget) {
		t.Errorf("leaf report missing header:\n%s", res.LeafReport)
	}
	out := FormatPlacement(res)
	if !strings.Contains(out, "fabric/leaf") || !strings.Contains(out, "maxSRAM") {
		t.Errorf("formatted sweep missing columns:\n%s", out)
	}
}
