package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ---- §2 background claim: recirculation throughput penalty ----

// RecircRow is one point of the recirculation-throughput study.
type RecircRow struct {
	Recirculations int
	// UsableThroughput is delivered/offered at an ingress offered load
	// equal to the pipeline capacity.
	UsableThroughput float64
}

// RunRecirculation quantifies §2's workaround cost: each recirculation
// pass consumes pipeline capacity, so recirculating every packet N
// times divides usable throughput by ~(N+1). The paper cites 38% at two
// and 16% at three recirculations on real hardware (where additional
// overheads apply); the model reproduces the sharp 1/(N+1) decay.
func RunRecirculation() ([]RecircRow, error) {
	var rows []RecircRow
	for _, n := range []int{0, 1, 2, 3} {
		prog := p4.NewProgram("recirc")
		prog.DefineStandardMetadata()
		count := prog.Schema.Define("m.count", 8)
		egr := prog.Schema.MustID(p4.FieldEgressSpec)
		prog.AddAction(&p4.Action{Name: "fwd", Body: []p4.Primitive{
			p4.ModifyField{Dst: egr, DstName: p4.FieldEgressSpec, Src: p4.ConstOp(1)},
		}})
		prog.AddAction(&p4.Action{Name: "again", Body: []p4.Primitive{
			p4.ALU{Op: p4.ALUAdd, Dst: count, DstName: "m.count", A: p4.FieldOp(count, "m.count"), B: p4.ConstOp(1)},
			p4.Recirculate{},
		}})
		prog.AddTable(&p4.Table{
			Name:          "fwd_tbl",
			ActionNames:   []string{"fwd"},
			DefaultAction: &p4.ActionCall{Action: "fwd"},
			Size:          1,
		})
		prog.AddTable(&p4.Table{
			Name:        "recirc_tbl",
			Keys:        []p4.MatchKey{{FieldName: "m.count", Field: count, Width: 8, Kind: p4.MatchRange}},
			ActionNames: []string{"again"},
			Size:        1,
		})
		prog.Ingress = []p4.ControlStmt{p4.Apply{Table: "fwd_tbl"}}
		prog.Egress = []p4.ControlStmt{p4.Apply{Table: "recirc_tbl"}}

		s := sim.New(1)
		cfg := rmt.DefaultConfig()
		cfg.IngressCapacityPPS = 1e6 // 1 Mpps pipeline
		cfg.QueueCapacity = 4096
		cfg.MaxRecirculations = 8
		sw, err := rmt.New(s, prog, cfg)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			// Recirculate while count < n.
			if _, err := sw.AddEntry("recirc_tbl", rmt.Entry{
				Keys: []rmt.KeySpec{rmt.RangeKey(0, uint64(n-1))}, Action: "again",
			}); err != nil {
				return nil, err
			}
		}
		// Offer exactly the pipeline capacity for 20ms; the bounded
		// admission buffer sheds the excess so the run reaches the
		// steady-state fresh/recirculated capacity split.
		offered := 0
		tick := s.Every(time.Microsecond, func() {
			pkt := prog.Schema.New()
			pkt.Size = 128
			sw.Inject(0, pkt)
			offered++
		})
		s.RunFor(20 * time.Millisecond)
		tick.Stop()
		s.RunFor(time.Millisecond) // drain
		rows = append(rows, RecircRow{
			Recirculations:   n,
			UsableThroughput: float64(sw.Stats().TxPackets) / float64(offered),
		})
	}
	return rows, nil
}

// FormatRecirculation renders the recirculation study.
func FormatRecirculation(rows []RecircRow) string {
	var b strings.Builder
	b.WriteString("§2 background — usable throughput vs per-packet recirculations\n")
	fmt.Fprintf(&b, "%8s %12s\n", "recircs", "throughput")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %11.0f%%\n", r.Recirculations, r.UsableThroughput*100)
	}
	return b.String()
}

// ---- §4.2 R3: pull-based polling vs digest export freshness ----

// FreshnessResult compares measurement staleness of Mantis's pull model
// against per-packet digest export under load.
type FreshnessResult struct {
	// PollStaleness is the age of polled data at reaction time under the
	// pull model (bounded by the dialogue period).
	PollStaleness stats.DurationStats
	// DigestStaleness is the age of the digest at processing time when
	// the CPU consumes a per-packet digest stream slower than packets
	// arrive (head-of-line blocking; grows without bound).
	DigestStaleness stats.DurationStats
}

// RunFreshness simulates both §4.2 measurement models for the same
// packet stream: 1 Mpps arrivals, a control plane able to process
// 200K digests/s (R1: CPUs cannot take per-packet load), a 10µs Mantis
// dialogue. The digest queue holds 4096 records, dropping the newest on
// overflow (the NIC-queue behavior that causes the staleness).
func RunFreshness() (*FreshnessResult, error) {
	s := sim.New(1)
	const (
		pktInterval    = time.Microsecond      // 1 Mpps
		digestService  = 5 * time.Microsecond  // 200K digests/s
		dialogPeriod   = 10 * time.Microsecond // Mantis loop
		runtime        = 20 * time.Millisecond
		digestQueueCap = 4096
	)
	type digest struct{ born sim.Time }
	var queue []digest
	var digestAges, pollAges []time.Duration
	var lastPacket sim.Time

	// Packet arrivals feed the digest queue and refresh the register the
	// pull model reads.
	s.Every(pktInterval, func() {
		lastPacket = s.Now()
		if len(queue) < digestQueueCap {
			queue = append(queue, digest{born: s.Now()})
		}
	})
	// Digest consumer: drains one record per service time.
	s.Every(digestService, func() {
		if len(queue) == 0 {
			return
		}
		d := queue[0]
		queue = queue[1:]
		digestAges = append(digestAges, s.Now().Sub(d.born))
	})
	// Mantis dialogue: polls the freshest state (the last packet's
	// register write) every period.
	s.Every(dialogPeriod, func() {
		if lastPacket == 0 {
			return
		}
		pollAges = append(pollAges, s.Now().Sub(lastPacket))
	})
	s.RunFor(runtime)
	return &FreshnessResult{
		PollStaleness:   stats.SummarizeDurations(pollAges),
		DigestStaleness: stats.SummarizeDurations(digestAges),
	}, nil
}

// FormatFreshness renders the freshness comparison.
func FormatFreshness(r *FreshnessResult) string {
	var b strings.Builder
	b.WriteString("§4.2 R3 — measurement freshness: pull-based polling vs digest export\n")
	fmt.Fprintf(&b, "  Mantis poll staleness:  %v\n", r.PollStaleness)
	fmt.Fprintf(&b, "  digest-queue staleness: %v\n", r.DigestStaleness)
	return b.String()
}
