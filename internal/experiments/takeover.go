package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The fig-takeover experiment measures crash-consistent failover: a
// journaled primary is killed immediately before its k-th driver
// operation (for every k across more than a full dialogue iteration), a
// hot standby detects the silence through the journal heartbeat, elects
// itself primary, audits the live switch, reconciles the torn
// iteration, and resumes the dialogue. Each point reports the MTTR
// decomposition — detect, audit, reconcile, resume — plus the
// serializability audit over every packet that crossed the takeover.

// takeoverArmIteration is the dialogue iteration at whose boundary the
// crash injector arms, so op counting starts at a protocol-phase
// boundary and each crash point is reproducible.
const takeoverArmIteration = 50

// TakeoverPoint is one crash point's takeover measurement.
type TakeoverPoint struct {
	// CrashOp is the 1-based driver-op index (counted from the arming
	// boundary) before which the primary was killed.
	CrashOp int
	// Outcome is the recovery classification (core.Outcome).
	Outcome string

	// MTTR phases: Detect (crash to heartbeat-timeout detection), Audit
	// (switch read-back), Reconcile (repair writes), Resume (successor
	// start to its first commit). MTTR is crash to first commit.
	Detect    time.Duration
	Audit     time.Duration
	Reconcile time.Duration
	Resume    time.Duration
	MTTR      time.Duration

	// RepairWrites and AuditedEntries size the reconciliation.
	RepairWrites   int
	AuditedEntries int

	// PostCommits counts successor commits after takeover; Packets and
	// Violations are the cross-table serializability audit over the
	// whole run (violations must be 0).
	PostCommits uint64
	Packets     int
	Violations  int
}

// TakeoverResult is the full sweep plus phase summaries.
type TakeoverResult struct {
	Points []TakeoverPoint

	// Phase distributions across the sweep.
	Detect    stats.DurationStats
	Audit     stats.DurationStats
	Reconcile stats.DurationStats
	Resume    stats.DurationStats
	MTTR      stats.DurationStats
}

// takeoverRig is the two-controller failover stack used by both the
// fig-takeover sweep and the crash rows of the fault sweep.
type takeoverRig struct {
	sim   *sim.Simulator
	sw    *rmt.Switch
	inj   *faults.Injector
	agent *core.Agent
	sb    *core.Standby

	packets    int
	violations int
}

// buildTakeoverRig wires primary (journaled, crash-injected session),
// standby, and serializability-auditing traffic over faultSweepSrc.
func buildTakeoverRig(prof faults.Profile, seed int64) (*takeoverRig, error) {
	plan, err := compiler.CompileSource(faultSweepSrc, compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s := sim.New(seed)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		return nil, err
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	svc := ctlplane.New(s, drv, ctlplane.Options{})
	sess, err := svc.Open(ctlplane.SessionOptions{Name: "primary", Role: ctlplane.RolePrimary, ElectionID: 1})
	if err != nil {
		return nil, err
	}
	inj := faults.Wrap(s, sess, prof, seed)
	inj.SetEnabled(false)
	store := journal.NewMemStore()
	r := &takeoverRig{sim: s, sw: sw, inj: inj}

	var h1, h2 core.UserHandle
	gen := uint64(0)
	reaction := func(ctx *core.Ctx) error {
		gen++
		t1, _ := ctx.Table("t1")
		t2, _ := ctx.Table("t2")
		if err := t1.ModifyEntry(h1, "set1", []uint64{gen}); err != nil {
			return err
		}
		return t2.ModifyEntry(h2, "set2", []uint64{gen})
	}

	r.agent = core.NewAgent(s, inj, plan, core.Options{
		Recovery: core.DefaultRecovery(),
		Journal:  &core.JournalConfig{Store: store},
		AfterIteration: func(p *sim.Proc, a *core.Agent) {
			if a.Stats().Iterations == takeoverArmIteration {
				inj.SetEnabled(true)
			}
		},
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			t1, _ := a.Table("t1")
			t2, _ := a.Table("t2")
			var err error
			if h1, err = t1.AddEntry(p, core.UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{0}}); err != nil {
				return err
			}
			h2, err = t2.AddEntry(p, core.UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set2", Data: []uint64{0}})
			return err
		},
	})
	if err := r.agent.RegisterNativeReaction("react", reaction); err != nil {
		return nil, err
	}

	r.sb = core.NewStandby(s, svc, core.StandbyOptions{
		Name:             "standby",
		ElectionID:       2,
		Store:            store,
		Plan:             plan,
		HeartbeatTimeout: 50 * time.Microsecond,
		CheckEvery:       3 * time.Microsecond,
		Agent:            core.Options{Recovery: core.DefaultRecovery()},
		Configure: func(a *core.Agent) error {
			return a.RegisterNativeReaction("react", reaction)
		},
	})

	sw.Tx = func(_ int, pkt *packet.Packet) {
		r.packets++
		if pkt.GetName("hdr.o1") != pkt.GetName("hdr.o2") {
			r.violations++
		}
	}
	return r, nil
}

// run drives the rig to completion: traffic throughout, crash,
// detection, recovery, and post-takeover progress.
func (r *takeoverRig) run() {
	r.agent.Start()
	i := 0
	tick := r.sim.Every(200*sim.Nanosecond, func() {
		pkt := r.sw.Program().Schema.New()
		pkt.Size = 64 + (i%8)*100
		pkt.SetName("hdr.k", 7)
		pkt.SetName("hdr.port", uint64(i%8))
		r.sw.Inject(0, pkt)
		i++
	})
	r.sim.RunFor(3 * time.Millisecond)
	tick.Stop()
	r.sb.Stop()
	if a := r.sb.Agent(); a != nil {
		a.Stop()
	}
	r.sim.RunFor(time.Millisecond)
}

// point converts the rig's outcome into a TakeoverPoint.
func (r *takeoverRig) point(k int) (*TakeoverPoint, error) {
	if !r.inj.Crashed() {
		return nil, fmt.Errorf("crash point %d never fired", k)
	}
	if err := r.sb.Err(); err != nil {
		return nil, fmt.Errorf("takeover failed: %w", err)
	}
	if !r.sb.TookOver() {
		return nil, fmt.Errorf("standby never took over")
	}
	rep := r.sb.Report()
	if rep == nil || rep.Recover == nil || rep.ResumedAt == 0 {
		return nil, fmt.Errorf("incomplete takeover report: %+v", rep)
	}
	succ := r.sb.Agent()
	if err := succ.Err(); err != nil {
		return nil, fmt.Errorf("successor died: %w", err)
	}
	crashAt := r.inj.CrashedAt()
	return &TakeoverPoint{
		CrashOp:        k,
		Outcome:        string(rep.Recover.Outcome),
		Detect:         rep.DetectedAt.Sub(crashAt),
		Audit:          rep.Recover.AuditTime,
		Reconcile:      rep.Recover.ReconcileTime,
		Resume:         rep.ResumedAt.Sub(rep.RecoveredAt),
		MTTR:           rep.ResumedAt.Sub(crashAt),
		RepairWrites:   rep.Recover.RepairWrites,
		AuditedEntries: rep.Recover.AuditedEntries,
		PostCommits:    succ.Stats().Commits,
		Packets:        r.packets,
		Violations:     r.violations,
	}, nil
}

// RunTakeover sweeps the crash point over every driver-op index of
// roughly two dialogue iterations and measures each takeover.
func RunTakeover(seed int64) (*TakeoverResult, error) {
	res := &TakeoverResult{}
	var detect, audit, reconcile, resume, mttr []time.Duration
	for k := 1; k <= 16; k++ {
		prof := faults.Profile{Name: fmt.Sprintf("crash-at-%d", k), CrashAtOp: k}
		r, err := buildTakeoverRig(prof, seed+int64(k))
		if err != nil {
			return nil, fmt.Errorf("crash point %d: %w", k, err)
		}
		r.run()
		pt, err := r.point(k)
		if err != nil {
			return nil, fmt.Errorf("crash point %d: %w", k, err)
		}
		if pt.Violations != 0 {
			return nil, fmt.Errorf("crash point %d: %d packets observed mixed state", k, pt.Violations)
		}
		res.Points = append(res.Points, *pt)
		detect = append(detect, pt.Detect)
		audit = append(audit, pt.Audit)
		reconcile = append(reconcile, pt.Reconcile)
		resume = append(resume, pt.Resume)
		mttr = append(mttr, pt.MTTR)
	}
	res.Detect = stats.SummarizeDurations(detect)
	res.Audit = stats.SummarizeDurations(audit)
	res.Reconcile = stats.SummarizeDurations(reconcile)
	res.Resume = stats.SummarizeDurations(resume)
	res.MTTR = stats.SummarizeDurations(mttr)
	return res, nil
}

// FormatTakeover renders the sweep as a table plus the MTTR breakdown.
func FormatTakeover(res *TakeoverResult) string {
	var b strings.Builder
	b.WriteString("Primary takeover — crash-point sweep with journal-driven recovery\n")
	b.WriteString("(primary killed before its k-th driver op; standby audits, reconciles, resumes)\n\n")
	fmt.Fprintf(&b, "%4s %-22s %9s %9s %9s %9s %9s %7s %7s %6s\n",
		"op", "outcome", "detect", "audit", "reconcile", "resume", "MTTR", "repairs", "commits", "viol")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%4d %-22s %9v %9v %9v %9v %9v %7d %7d %6d\n",
			p.CrashOp, p.Outcome, p.Detect, p.Audit, p.Reconcile, p.Resume, p.MTTR,
			p.RepairWrites, p.PostCommits, p.Violations)
	}
	fmt.Fprintf(&b, "\nMTTR decomposition over %d crash points:\n", len(res.Points))
	fmt.Fprintf(&b, "  detect:    mean %v, p99 %v (heartbeat timeout dominates)\n", res.Detect.Mean, res.Detect.P99)
	fmt.Fprintf(&b, "  audit:     mean %v, p99 %v\n", res.Audit.Mean, res.Audit.P99)
	fmt.Fprintf(&b, "  reconcile: mean %v, p99 %v\n", res.Reconcile.Mean, res.Reconcile.P99)
	fmt.Fprintf(&b, "  resume:    mean %v, p99 %v\n", res.Resume.Mean, res.Resume.P99)
	fmt.Fprintf(&b, "  MTTR:      mean %v, p99 %v, max %v\n", res.MTTR.Mean, res.MTTR.P99, res.MTTR.Max)
	return b.String()
}
