package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestFig10aShapes(t *testing.T) {
	rows, err := RunFig10a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Both series increase with size; field args grow faster (per-register
	// request overhead); register args gain only 10s of ns per extra byte.
	first, last := rows[0], rows[len(rows)-1]
	if last.FieldLatency <= first.FieldLatency || last.RegLatency <= first.RegLatency {
		t.Fatalf("series not increasing: %+v .. %+v", first, last)
	}
	fieldSlope := float64(last.FieldLatency-first.FieldLatency) / float64(last.Bytes-first.Bytes)
	regSlope := float64(last.RegLatency-first.RegLatency) / float64(last.Bytes-first.Bytes)
	if fieldSlope <= regSlope {
		t.Fatalf("field slope %.1f <= register slope %.1f ns/B", fieldSlope, regSlope)
	}
	if regSlope < 10 || regSlope > 100 {
		t.Fatalf("register marginal cost %.1f ns/B, want 10s of ns", regSlope)
	}
	if FormatFig10a(rows) == "" {
		t.Fatal("format empty")
	}
}

func TestFig10bShapes(t *testing.T) {
	rows, err := RunFig10b()
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	// Scalar malleables: constant regardless of count (single init write).
	if first.ScalarLatency != last.ScalarLatency {
		t.Fatalf("scalar latency not constant: %v vs %v", first.ScalarLatency, last.ScalarLatency)
	}
	// Table mods: linear in count.
	ratio := float64(last.TableLatency) / float64(first.TableLatency)
	wantRatio := float64(last.Updates) / float64(first.Updates)
	if ratio < wantRatio*0.9 || ratio > wantRatio*1.1 {
		t.Fatalf("table latency ratio %.1f, want ~%.0f (linear)", ratio, wantRatio)
	}
	if FormatFig10b(rows) == "" {
		t.Fatal("format empty")
	}
}

func TestFig11Tradeoff(t *testing.T) {
	rows, err := RunFig11()
	if err != nil {
		t.Fatal(err)
	}
	// Busy loop: ~100% utilization. Heavier pacing: lower utilization,
	// unchanged per-iteration latency.
	if rows[0].Pacing != 0 || rows[0].Utilization < 0.9 {
		t.Fatalf("busy-loop row: %+v", rows[0])
	}
	last := rows[len(rows)-1]
	if last.Utilization > 0.1 {
		t.Fatalf("500µs pacing utilization %.2f, want < 0.1", last.Utilization)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Utilization > rows[i-1].Utilization+0.01 {
			t.Fatalf("utilization not monotone: %+v", rows)
		}
	}
	// The paper's claim: ~20% utilization still reacts in 10s of µs.
	for _, r := range rows {
		if r.Utilization < 0.25 && r.Utilization > 0.1 && r.ReactionPeriod > 100*time.Microsecond {
			t.Fatalf("at %.0f%% utilization the reaction period is %v", r.Utilization*100, r.ReactionPeriod)
		}
	}
	if FormatFig11(rows) == "" {
		t.Fatal("format empty")
	}
}

func TestFig12Contention(t *testing.T) {
	res, err := RunFig12()
	if err != nil {
		t.Fatal(err)
	}
	if res.Without.Count == 0 || res.With.Count == 0 {
		t.Fatal("no samples")
	}
	// Contention slows the legacy app somewhat, but the median overhead
	// stays moderate (paper: 4.64% median, 6.45% p99; our single queue
	// makes it a bit larger, but it must stay well under 2x).
	if res.MedianOverheadPct < 0 {
		t.Fatalf("negative overhead: %+v", res)
	}
	if res.MedianOverheadPct > 100 {
		t.Fatalf("median overhead %.1f%%, want moderate", res.MedianOverheadPct)
	}
	// Bimodal: the maximum (blocked behind a Mantis op) clearly exceeds
	// the minimum (uncontended).
	if res.With.Max <= res.With.Min {
		t.Fatal("no bimodality under contention")
	}
	if FormatFig12(res) == "" {
		t.Fatal("format empty")
	}
}

func TestFig13Shapes(t *testing.T) {
	a, err := RunFig13a(32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig13b(4)
	if err != nil {
		t.Fatal(err)
	}
	// 13a at occupancy 1024: write grows ~linearly in A; read grows
	// super-linearly (quadratic term from A extra ternary columns).
	var w2, w8, r2, r8 int
	for _, r := range a {
		if r.Occupancy != 1024 {
			continue
		}
		switch r.Alts {
		case 2:
			w2, r2 = r.WriteTCAMBits, r.ReadTCAMBits
		case 8:
			w8, r8 = r.WriteTCAMBits, r.ReadTCAMBits
		}
	}
	wGrowth := float64(w8) / float64(w2)
	rGrowth := float64(r8) / float64(r2)
	if wGrowth < 3.5 || wGrowth > 4.5 {
		t.Fatalf("write growth A=2..8 is %.2f, want ~4 (linear)", wGrowth)
	}
	if rGrowth <= wGrowth*1.5 {
		t.Fatalf("read growth %.2f not clearly super-linear vs write %.2f", rGrowth, wGrowth)
	}
	// 13b: write constant in K; read grows with K.
	if b[0].WriteTCAMBits != b[len(b)-1].WriteTCAMBits {
		t.Fatalf("write TCAM varies with width: %+v", b)
	}
	if b[len(b)-1].ReadTCAMBits <= b[0].ReadTCAMBits {
		t.Fatalf("read TCAM not increasing with width: %+v", b)
	}
	if FormatFig13(a, b) == "" {
		t.Fatal("format empty")
	}
}

func TestFig14SmallScale(t *testing.T) {
	res, err := RunFig14(0.01, 1) // 1% of a CAIDA block: ~89K packets
	if err != nil {
		t.Fatal(err)
	}
	if res.TracePackets < 50000 {
		t.Fatalf("trace too small: %d", res.TracePackets)
	}
	if len(res.Results) != 6 {
		t.Fatalf("results = %d", len(res.Results))
	}
	out := FormatFig14(res)
	if !strings.Contains(out, "mantis") || !strings.Contains(out, "count-min/16K") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestTable1Report(t *testing.T) {
	out, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Hash polarization") {
		t.Fatalf("incomplete:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	res, err := RunAblations()
	if err != nil {
		t.Fatal(err)
	}
	// Three-phase delta cost ≪ two-phase full reinstall.
	if res.ThreePhaseOps*5 > res.TwoPhaseOps {
		t.Fatalf("three-phase %d ops vs two-phase %d; expected >=5x gap",
			res.ThreePhaseOps, res.TwoPhaseOps)
	}
	// Driver optimizations individually help; both together are fastest.
	if res.IterOptimized >= res.IterNoMemo || res.IterOptimized >= res.IterNoBatch {
		t.Fatalf("optimized %v not faster than ablations (%v, %v)",
			res.IterOptimized, res.IterNoMemo, res.IterNoBatch)
	}
	if res.IterNeither <= res.IterNoMemo || res.IterNeither <= res.IterNoBatch {
		t.Fatalf("neither %v should be slowest (%v, %v)",
			res.IterNeither, res.IterNoMemo, res.IterNoBatch)
	}
	if FormatAblations(res) == "" {
		t.Fatal("format empty")
	}
}

func TestFig16Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	s, err := RunFig16(3)
	if err != nil {
		t.Fatal(err)
	}
	// Reaction time grows with the measurement period (Fig. 16a).
	first, last := s.ByTd[0], s.ByTd[len(s.ByTd)-1]
	if last.Median <= first.Median {
		t.Fatalf("reaction time not increasing with T_d: %v .. %v", first.Median, last.Median)
	}
	// At small T_d the paper lands in 100-200µs; accept the same decade.
	if first.Median > 500*time.Microsecond {
		t.Fatalf("small-T_d reaction time %v", first.Median)
	}
	// Eta's impact is minor at fixed T_d (Fig. 16b): max/min medians
	// within ~4x.
	minM, maxM := s.ByEta[0].Median, s.ByEta[0].Median
	for _, st := range s.ByEta {
		if st.Median < minM {
			minM = st.Median
		}
		if st.Median > maxM {
			maxM = st.Median
		}
	}
	if float64(maxM) > 4*float64(minM) {
		t.Fatalf("eta impact too large: %v .. %v", minM, maxM)
	}
	if FormatFig16(s) == "" {
		t.Fatal("format empty")
	}
}

// TestFig16ParallelDeterminism: the worker-pool fan-out must be
// indistinguishable from the serial sweep — byte-identical JSON, the
// same bytes the experiments CLI writes to BENCH_fig16.json.
func TestFig16ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	serial, err := RunFig16Parallel(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFig16Parallel(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.MarshalIndent(serial, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(par, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("parallel sweep diverged from serial:\nserial: %s\nparallel: %s", a, b)
	}
}

// TestForEach covers the pool helper itself: full coverage of the index
// space at any worker count, and lowest-index error selection.
func TestForEach(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		var hits [37]int32
		err := forEach(len(hits), workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
	wantErr := errors.New("boom")
	err := forEach(16, 4, func(i int) error {
		if i == 11 || i == 5 {
			return fmt.Errorf("job %d: %w", i, wantErr)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "job 5") {
		t.Fatalf("err = %v, want lowest-index job 5", err)
	}
	if err := forEach(0, 4, func(int) error { return wantErr }); err != nil {
		t.Fatalf("n=0 ran jobs: %v", err)
	}
}

func TestFig15Report(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario is slow")
	}
	r, err := RunFig15(1)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFig15(r)
	if !strings.Contains(out, "mitigation install") {
		t.Fatalf("incomplete:\n%s", out)
	}
}

// TestRecirculationThroughput: §2's claim — per-packet recirculation
// divides usable throughput sharply (~1/(N+1)).
func TestRecirculationThroughput(t *testing.T) {
	rows, err := RunRecirculation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].UsableThroughput < 0.95 {
		t.Fatalf("baseline throughput %.2f", rows[0].UsableThroughput)
	}
	// Two recirculations: ~1/3 (the paper measures 38% on hardware).
	if r := rows[2].UsableThroughput; r < 0.25 || r > 0.45 {
		t.Fatalf("2-recirc throughput %.2f, want ~1/3", r)
	}
	// Three: ~1/4 (paper: 16%).
	if r := rows[3].UsableThroughput; r < 0.18 || r > 0.35 {
		t.Fatalf("3-recirc throughput %.2f, want ~1/4", r)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].UsableThroughput >= rows[i-1].UsableThroughput {
			t.Fatalf("throughput not decreasing: %+v", rows)
		}
	}
	if FormatRecirculation(rows) == "" {
		t.Fatal("format empty")
	}
}

// TestMeasurementFreshness: §4.2 R3 — polled data is as fresh as the
// dialogue period, while an overloaded digest stream is head-of-line
// blocked into ms-scale staleness.
func TestMeasurementFreshness(t *testing.T) {
	r, err := RunFreshness()
	if err != nil {
		t.Fatal(err)
	}
	if r.PollStaleness.Max > 15*time.Microsecond {
		t.Fatalf("poll staleness %v, want bounded by the dialogue period", r.PollStaleness.Max)
	}
	if r.DigestStaleness.P99 < 100*r.PollStaleness.Max {
		t.Fatalf("digest staleness %v not orders beyond poll staleness %v",
			r.DigestStaleness.P99, r.PollStaleness.Max)
	}
	if FormatFreshness(r) == "" {
		t.Fatal("format empty")
	}
}
