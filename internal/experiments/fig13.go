package experiments

import (
	"fmt"
	"strings"

	"repro/internal/compiler"
)

// Fig13Row is one point of the malleable-field TCAM-usage study: a
// K-bit malleable field with A alternatives, used by tblWriteX (5-tuple
// match, writes ${X}) and tblReadX (5-tuple + ${X} match, reads ${X}).
type Fig13Row struct {
	Alts      int
	Width     int
	Occupancy int
	// WriteTCAMBits / ReadTCAMBits are the generated tables' TCAM usage.
	WriteTCAMBits int
	ReadTCAMBits  int
}

// fig13Src generates the benchmark program for a given width and alt
// count: the malleable field's alternatives are K-bit header fields.
func fig13Src(width, alts int) string {
	var b strings.Builder
	b.WriteString("header_type h_t {\n  fields {\n")
	b.WriteString("    srcAddr : 32; dstAddr : 32; srcPort : 16; dstPort : 16; proto : 8;\n")
	for i := 0; i < alts; i++ {
		fmt.Fprintf(&b, "    alt%d : %d;\n", i, width)
	}
	fmt.Fprintf(&b, "    out : %d;\n", width)
	b.WriteString("  }\n}\nheader h_t h;\n")

	fmt.Fprintf(&b, "malleable field X {\n  width : %d; init : h.alt0;\n  alts { ", width)
	for i := 0; i < alts; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "h.alt%d", i)
	}
	b.WriteString(" }\n}\n")

	b.WriteString(`
action writeX(v) { modify_field(${X}, v); }
action readX() { modify_field(h.out, ${X}); }

malleable table tblWriteX {
  reads {
    h.srcAddr : ternary;
    h.dstAddr : ternary;
    h.srcPort : ternary;
    h.dstPort : ternary;
    h.proto : ternary;
  }
  actions { writeX; }
  size : 1024;
}
malleable table tblReadX {
  reads {
    h.srcAddr : ternary;
    h.dstAddr : ternary;
    h.srcPort : ternary;
    h.dstPort : ternary;
    h.proto : ternary;
    ${X} : exact;
  }
  actions { readX; }
  size : 1024;
}
control ingress { apply(tblWriteX); apply(tblReadX); }
`)
	return b.String()
}

// RunFig13a sweeps the alternative count A at fixed width for both
// occupancies (512 and 1024 user entries): tblWriteX grows linearly in
// A, tblReadX asymptotically quadratically.
func RunFig13a(width int) ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, alts := range []int{2, 3, 4, 5, 6, 7, 8} {
		for _, occ := range []int{512, 1024} {
			row, err := fig13Point(width, alts, occ)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

// RunFig13b sweeps the field width K at fixed A: tblReadX usage is
// proportional to K; tblWriteX is constant in K.
func RunFig13b(alts int) ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, width := range []int{8, 16, 32, 48, 64} {
		row, err := fig13Point(width, alts, 1024)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func fig13Point(width, alts, occupancy int) (*Fig13Row, error) {
	plan, err := compiler.CompileSource(fig13Src(width, alts), compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	// Occupancy is user entries; the generated tables hold
	// occupancy x A x 2 (alts x versions) concrete entries.
	gen := occupancy * alts * 2
	res := plan.Prog.EstimateResources(map[string]int{
		"tblWriteX": gen,
		"tblReadX":  gen,
	})
	row := &Fig13Row{Alts: alts, Width: width, Occupancy: occupancy}
	for _, tr := range res.Tables {
		switch tr.Name {
		case "tblWriteX":
			row.WriteTCAMBits = tr.Bits
		case "tblReadX":
			row.ReadTCAMBits = tr.Bits
		}
	}
	return row, nil
}

// FormatFig13 renders the TCAM-usage tables.
func FormatFig13(a []Fig13Row, b []Fig13Row) string {
	var out strings.Builder
	out.WriteString("Fig 13a — TCAM usage vs alternatives (K=32)\n")
	fmt.Fprintf(&out, "%5s %6s %10s %14s %14s\n", "alts", "width", "occupancy", "tblWriteX(Kb)", "tblReadX(Kb)")
	for _, r := range a {
		fmt.Fprintf(&out, "%5d %6d %10d %14.0f %14.0f\n", r.Alts, r.Width, r.Occupancy,
			float64(r.WriteTCAMBits)/1024, float64(r.ReadTCAMBits)/1024)
	}
	out.WriteString("\nFig 13b — TCAM usage vs field width (A=4, occupancy 1024)\n")
	fmt.Fprintf(&out, "%5s %6s %10s %14s %14s\n", "alts", "width", "occupancy", "tblWriteX(Kb)", "tblReadX(Kb)")
	for _, r := range b {
		fmt.Fprintf(&out, "%5d %6d %10d %14.0f %14.0f\n", r.Alts, r.Width, r.Occupancy,
			float64(r.WriteTCAMBits)/1024, float64(r.ReadTCAMBits)/1024)
	}
	return out.String()
}
