package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30*Nanosecond, func() { got = append(got, 3) })
	s.Schedule(10*Nanosecond, func() { got = append(got, 1) })
	s.Schedule(20*Nanosecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if s.Now() != Time(30) {
		t.Fatalf("clock = %v, want 30ns", s.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*Nanosecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var seq []string
	s.Schedule(10*Nanosecond, func() {
		seq = append(seq, "a")
		s.Schedule(5*Nanosecond, func() { seq = append(seq, "c") })
	})
	s.Schedule(12*Nanosecond, func() { seq = append(seq, "b") })
	s.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("got %v want %v", seq, want)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	id := s.Schedule(10*Nanosecond, func() { ran = true })
	s.Cancel(id)
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	s.Schedule(100*Nanosecond, func() {})
	s.RunUntil(Time(50))
	if s.Now() != Time(50) {
		t.Fatalf("clock = %v, want 50ns", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.RunUntil(Time(200))
	if s.Now() != Time(200) || s.Pending() != 0 {
		t.Fatalf("clock = %v pending = %d", s.Now(), s.Pending())
	}
}

func TestRunFor(t *testing.T) {
	s := New(1)
	n := 0
	s.Every(10*Nanosecond, func() { n++ })
	s.RunFor(100 * Nanosecond)
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
}

func TestTickerStop(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = s.Every(10*Nanosecond, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	s.RunFor(1000 * Nanosecond)
	if n != 3 {
		t.Fatalf("ticks after stop = %d, want 3", n)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestStop(t *testing.T) {
	s := New(1)
	n := 0
	s.Every(Nanosecond, func() {
		n++
		if n == 5 {
			s.Stop()
		}
	})
	s.Run()
	if n != 5 {
		t.Fatalf("events after Stop = %d, want 5", n)
	}
}

func TestSchedulePastClamped(t *testing.T) {
	s := New(1)
	s.Schedule(100*Nanosecond, func() {
		// Scheduling in the past must clamp to now, keeping the clock monotonic.
		s.At(Time(10), func() {
			if s.Now() != Time(100) {
				t.Errorf("clock ran backwards: %v", s.Now())
			}
		})
	})
	s.Run()
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestExecutedCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.Schedule(time.Duration(i)*Nanosecond, func() {})
	}
	s.Run()
	if s.Executed() != 7 {
		t.Fatalf("executed = %d, want 7", s.Executed())
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the final clock equals the max delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		var fired []Time
		var max Time
		for _, d := range delays {
			dd := time.Duration(d) * Nanosecond
			if Time(dd) > max {
				max = Time(dd)
			}
			s.Schedule(dd, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || s.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1000)
	if tm.Add(500*Nanosecond) != Time(1500) {
		t.Fatal("Add")
	}
	if tm.Sub(Time(400)) != 600*Nanosecond {
		t.Fatal("Sub")
	}
	if tm.Duration() != time.Microsecond {
		t.Fatal("Duration")
	}
	if tm.String() != "1µs" {
		t.Fatalf("String = %q", tm.String())
	}
}
