package sim

import (
	"testing"
	"time"
)

func TestProcSleepAdvancesClock(t *testing.T) {
	s := New(1)
	var times []Time
	s.Spawn("p", func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(10 * Microsecond)
		times = append(times, p.Now())
		p.Sleep(5 * Microsecond)
		times = append(times, p.Now())
	})
	s.Run()
	want := []Time{0, Time(10 * Microsecond), Time(15 * Microsecond)}
	if len(times) != 3 {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcInterleavesWithEvents(t *testing.T) {
	s := New(1)
	var order []string
	s.Schedule(5*Nanosecond, func() { order = append(order, "event@5") })
	s.Spawn("p", func(p *Proc) {
		order = append(order, "proc@0")
		p.Sleep(10 * Nanosecond)
		order = append(order, "proc@10")
	})
	s.Run()
	if len(order) != 3 || order[0] != "proc@0" || order[1] != "event@5" || order[2] != "proc@10" {
		t.Fatalf("order = %v", order)
	}
}

func TestTwoProcsDeterministic(t *testing.T) {
	runOnce := func() []string {
		s := New(1)
		var order []string
		s.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				order = append(order, "a")
				p.Sleep(10 * Nanosecond)
			}
		})
		s.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				order = append(order, "b")
				p.Sleep(15 * Nanosecond)
			}
		})
		s.Run()
		return order
	}
	first := runOnce()
	for i := 0; i < 10; i++ {
		again := runOnce()
		if len(again) != len(first) {
			t.Fatal("nondeterministic length")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestProcWaitUntil(t *testing.T) {
	s := New(1)
	var at Time
	s.Spawn("p", func(p *Proc) {
		p.WaitUntil(Time(100))
		p.WaitUntil(Time(50)) // in the past: no-op
		at = p.Now()
	})
	s.Run()
	if at != Time(100) {
		t.Fatalf("at = %v, want 100ns", at)
	}
}

func TestProcYield(t *testing.T) {
	s := New(1)
	var order []string
	s.Spawn("p", func(p *Proc) {
		s.Schedule(0, func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "after-yield")
	})
	s.Run()
	if len(order) != 2 || order[0] != "event" || order[1] != "after-yield" {
		t.Fatalf("order = %v", order)
	}
}

func TestProcSchedulingFromProc(t *testing.T) {
	s := New(1)
	hit := false
	s.Spawn("p", func(p *Proc) {
		p.Sim().Schedule(20*Nanosecond, func() { hit = true })
		p.Sleep(30 * Nanosecond)
		if !hit {
			t.Error("event scheduled from proc did not run during sleep")
		}
	})
	s.Run()
	if !hit {
		t.Fatal("scheduled event never ran")
	}
}

func TestProcParkUnpark(t *testing.T) {
	s := New(1)
	var order []string
	parked := false
	var worker *Proc
	worker = s.Spawn("worker", func(p *Proc) {
		order = append(order, "work@"+p.Now().String())
		parked = true
		p.Park()
		parked = false
		order = append(order, "woken@"+p.Now().String())
	})
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(100 * Nanosecond)
		if !parked {
			t.Error("worker not parked at wake time")
		}
		worker.Unpark()
		order = append(order, "unpark@"+p.Now().String())
	})
	s.Run()
	want := []string{"work@0s", "unpark@100ns", "woken@100ns"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcParkedProcDoesNotBlockDrain(t *testing.T) {
	// A parked process holds no pending events, so the simulation can
	// drain and finish around it.
	s := New(1)
	reached := false
	s.Spawn("parked", func(p *Proc) {
		p.Park()
		t.Error("parked proc resumed without Unpark")
	})
	s.Schedule(50*Nanosecond, func() { reached = true })
	s.Run()
	if !reached || s.Pending() != 0 {
		t.Fatalf("reached=%v pending=%d", reached, s.Pending())
	}
}

func TestProcRunUntilPartial(t *testing.T) {
	s := New(1)
	steps := 0
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < 10; i++ {
			steps++
			p.Sleep(10 * Nanosecond)
		}
	})
	s.RunUntil(Time(35 * time.Nanosecond))
	if steps != 4 { // at t=0,10,20,30
		t.Fatalf("steps = %d, want 4", steps)
	}
	s.Run()
	if steps != 10 {
		t.Fatalf("steps after full run = %d", steps)
	}
}
