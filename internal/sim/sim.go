// Package sim provides a deterministic discrete-event simulation core.
//
// All Mantis components in this repository — the RMT switch model, the
// simulated PCIe driver, the network simulator, and the Mantis agent's
// dialogue loop — run against a shared virtual clock managed by a
// Simulator. Virtual time has nanosecond resolution, which is required to
// express the paper's latency scales faithfully: pipeline traversal is
// measured in 100s of nanoseconds, PCIe round trips in microseconds, and
// full reaction loops in 10s of microseconds.
//
// The simulator is intentionally single-threaded: events execute one at a
// time in (time, sequence) order, so every run is exactly reproducible
// given the same seed. Components that are conceptually concurrent (the
// data plane, the Mantis agent, a legacy control plane) interleave by
// scheduling events rather than by using goroutines.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations re-exported for readability at call sites.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to a duration since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback: either a plain closure fn, or an
// arg-passing afn(arg) pair (see ScheduleCall). The latter lets hot
// paths schedule per-packet work without allocating a capturing
// closure; combined with the simulator's event freelist the schedule
// operation itself is allocation-free in steady state.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run FIFO
	fn  func()
	afn func(any)
	arg any
	id  uint64
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending event queue.
type Simulator struct {
	now       Time
	queue     eventQueue
	seq       uint64
	nextID    uint64
	cancelled map[uint64]bool
	stopped   bool
	rng       *rand.Rand
	executed  uint64
	// free recycles event structs so steady-state scheduling does not
	// allocate (one event is reused as soon as it has run).
	free []*event
}

// New returns a Simulator whose clock starts at 0 and whose deterministic
// RNG is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{
		cancelled: make(map[uint64]bool),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero (run as soon as the current event completes).
func (s *Simulator) Schedule(delay time.Duration, fn func()) EventID {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now.Add(delay), fn)
}

// At runs fn at the absolute virtual time t. Scheduling in the past is an
// error in simulation logic; it is clamped to "now" to keep the clock
// monotonic, since a discrete-event clock must never run backwards.
func (s *Simulator) At(t Time, fn func()) EventID {
	e := s.newEvent(t)
	e.fn = fn
	heap.Push(&s.queue, e)
	return EventID(e.id)
}

// ScheduleCall runs fn(arg) after delay of virtual time. Unlike
// Schedule it takes the callback and its argument separately, so
// callers on per-packet paths can pass a preallocated func(any) plus
// the packet itself and avoid a closure allocation per event.
func (s *Simulator) ScheduleCall(delay time.Duration, fn func(any), arg any) EventID {
	if delay < 0 {
		delay = 0
	}
	return s.AtCall(s.now.Add(delay), fn, arg)
}

// AtCall runs fn(arg) at the absolute virtual time t (clamped to now,
// like At).
func (s *Simulator) AtCall(t Time, fn func(any), arg any) EventID {
	e := s.newEvent(t)
	e.afn, e.arg = fn, arg
	heap.Push(&s.queue, e)
	return EventID(e.id)
}

// newEvent takes an event from the freelist (or allocates one), stamps
// it with the next sequence number and ID, and clamps t to now.
func (s *Simulator) newEvent(t Time) *event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.nextID++
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = new(event)
	}
	e.at, e.seq, e.id = t, s.seq, s.nextID
	return e
}

// release clears an executed (or cancelled) event and returns it to the
// freelist for reuse by the next schedule call.
func (s *Simulator) release(e *event) {
	*e = event{}
	s.free = append(s.free, e)
}

// Cancel prevents a pending event from running. Cancelling an event that
// already ran is a no-op.
func (s *Simulator) Cancel(id EventID) { s.cancelled[uint64(id)] = true }

// Pending reports the number of events waiting to run (including
// cancelled ones not yet drained).
func (s *Simulator) Pending() int { return len(s.queue) }

// Executed reports how many events have run so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Stop makes Run return after the current event finishes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		s.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t (even if no event lands on it).
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped && s.queue[0].at <= t {
		s.step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// RunFor executes events for d of virtual time from the current instant.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

func (s *Simulator) step() {
	e := heap.Pop(&s.queue).(*event)
	if s.cancelled[e.id] {
		delete(s.cancelled, e.id)
		s.release(e)
		return
	}
	if e.at > s.now {
		s.now = e.at
	}
	s.executed++
	// Copy the callback out and recycle the event before running it, so
	// events the callback schedules can reuse the struct immediately.
	fn, afn, arg := e.fn, e.afn, e.arg
	s.release(e)
	if afn != nil {
		afn(arg)
		return
	}
	fn()
}

// Every schedules fn to run repeatedly with the given period, starting
// after one period. The returned Ticker can be stopped. A period of zero
// or less panics: it would wedge the simulator at a single instant.
func (s *Simulator) Every(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v", period))
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	sim     *Simulator
	period  time.Duration
	fn      func()
	pending EventID
	stopped bool
}

func (t *Ticker) arm() {
	t.pending = t.sim.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels all future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.sim.Cancel(t.pending)
}
