package sim

import (
	"fmt"
	"time"
)

// Proc is a simulated sequential process (e.g. a control-plane thread).
//
// The event loop of a discrete-event simulator is inconvenient for code
// that reads state, blocks for a device latency, then branches on the
// result — exactly the shape of the Mantis agent's dialogue loop and of
// a legacy control-plane application. Proc provides blocking-style
// execution on top of the event queue: the process body runs in its own
// goroutine, but control strictly alternates between the simulator and
// at most one runnable process, so execution remains deterministic.
//
// A Proc may only interact with the simulation between Spawn and the
// return of its body, and must block only via Sleep/WaitUntil.
type Proc struct {
	sim  *Simulator
	name string
	// resume wakes the process goroutine; yield returns control to the
	// simulator goroutine.
	resume chan struct{}
	yield  chan struct{}
	// handoffFn is the handoff method value, bound once at Spawn so the
	// steady-state Sleep/Unpark path does not allocate a fresh closure
	// per scheduling (method values capture the receiver on the heap).
	handoffFn func()
	done      bool
}

// Spawn starts fn as a simulated process at the current virtual time.
// fn begins executing when the scheduler reaches the spawn event.
func (s *Simulator) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		sim:    s,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	p.handoffFn = p.handoff
	s.Schedule(0, func() {
		go func() {
			<-p.resume
			fn(p)
			p.done = true
			p.yield <- struct{}{}
		}()
		p.handoff()
	})
	return p
}

// handoff transfers control from the simulator goroutine to the process
// goroutine and waits for it to block or finish. Must be called from
// the simulator goroutine (inside an event).
func (p *Proc) handoff() {
	p.resume <- struct{}{}
	<-p.yield
}

// block transfers control from the process goroutine back to the
// simulator and waits to be resumed. Must be called from the process
// goroutine.
func (p *Proc) block() {
	p.yield <- struct{}{}
	<-p.resume
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.Now() }

// Sim returns the underlying simulator. Scheduling events from within a
// running process is safe: the simulator goroutine is parked while the
// process runs.
func (p *Proc) Sim() *Simulator { return p.sim }

// Sleep suspends the process for d of virtual time. Other events (data
// plane packets, other processes) run in the meantime.
func (p *Proc) Sleep(d time.Duration) {
	if p.done {
		panic(fmt.Sprintf("sim: Sleep on finished proc %q", p.name))
	}
	if d <= 0 {
		d = 0
	}
	p.sim.Schedule(d, p.handoffFn)
	p.block()
}

// WaitUntil suspends the process until the absolute virtual time t. If
// t is in the past it returns immediately.
func (p *Proc) WaitUntil(t Time) {
	if t <= p.sim.Now() {
		return
	}
	p.Sleep(t.Sub(p.sim.Now()))
}

// Yield gives other same-time events a chance to run before continuing.
func (p *Proc) Yield() { p.Sleep(0) }

// Park suspends the process indefinitely, until some other component —
// an event or another process — calls Unpark. Unlike Sleep, no wakeup
// is scheduled: a parked process consumes no events and the simulation
// may drain and finish around it (its goroutine is reclaimed at process
// exit only if it is eventually unparked).
//
// Park/Unpark is the blocking primitive service-style components are
// built from: a dispatcher parks while its queues are empty, and a
// requester parks while its request is in flight. The pairing
// discipline is the caller's responsibility: every Park must be matched
// by exactly one Unpark, and Unpark must never be called for a process
// that is not parked — trackers like an "idle" flag or a per-request
// waiter pointer make this trivial to maintain.
func (p *Proc) Park() {
	if p.done {
		panic(fmt.Sprintf("sim: Park on finished proc %q", p.name))
	}
	p.block()
}

// Unpark schedules a parked process to resume at the current virtual
// time (after already-queued same-time events). It must be called from
// simulator context: inside an event callback or from another running
// process.
func (p *Proc) Unpark() { p.sim.Schedule(0, p.handoffFn) }
