package p4

import (
	"sort"
	"strings"

	"repro/internal/packet"
)

// Resources summarizes the hardware footprint of a program, in the units
// the paper's Table 1 and Figure 13 report: pipeline stages, table and
// register counts, SRAM and TCAM bits, and P4R-generated metadata bits.
type Resources struct {
	IngressStages int
	EgressStages  int
	// Stages is the total number of match stages consumed (ingress +
	// egress, as RMT pipelines are physically disjoint).
	Stages       int
	NumTables    int
	NumRegisters int
	SRAMBits     int
	TCAMBits     int
	MetadataBits int
	Tables       []TableResources
}

// TableResources is the per-table breakdown.
type TableResources struct {
	Name     string
	Stage    int
	TCAM     bool
	Capacity int
	// EntryBits is the storage cost of one entry: match key bits (doubled
	// for TCAM value+mask) plus bound action data bits.
	EntryBits int
	Bits      int
}

// fieldSet is a small set of FieldIDs.
type fieldSet map[packet.FieldID]struct{}

func (s fieldSet) add(id packet.FieldID) { s[id] = struct{}{} }
func (s fieldSet) intersects(o fieldSet) bool {
	for id := range s {
		if _, ok := o[id]; ok {
			return true
		}
	}
	return false
}

func operandReads(o Operand, s fieldSet) {
	if o.Kind == OpField {
		s.add(o.Field)
	}
}

// actionEffects returns the fields an action reads and writes.
func actionEffects(a *Action) (reads, writes fieldSet) {
	reads, writes = fieldSet{}, fieldSet{}
	for _, prim := range a.Body {
		switch op := prim.(type) {
		case ModifyField:
			writes.add(op.Dst)
			operandReads(op.Src, reads)
		case ALU:
			writes.add(op.Dst)
			operandReads(op.A, reads)
			operandReads(op.B, reads)
		case RegisterRead:
			writes.add(op.Dst)
			operandReads(op.Index, reads)
		case RegisterWrite:
			operandReads(op.Index, reads)
			operandReads(op.Value, reads)
		case RegisterIncrement:
			operandReads(op.Index, reads)
			operandReads(op.By, reads)
		case ModifyFieldWithHash:
			writes.add(op.Dst)
		}
	}
	return reads, writes
}

// tableEffects returns the fields a table reads (match keys plus action
// operands) and writes (across all its actions).
func (p *Program) tableEffects(t *Table) (reads, writes fieldSet) {
	reads, writes = fieldSet{}, fieldSet{}
	for _, k := range t.Keys {
		reads.add(k.Field)
	}
	names := t.ActionNames
	if t.DefaultAction != nil {
		names = append(append([]string(nil), names...), t.DefaultAction.Action)
	}
	for _, an := range names {
		a := p.Actions[an]
		if a == nil {
			continue
		}
		r, w := actionEffects(a)
		for id := range r {
			reads.add(id)
		}
		for id := range w {
			writes.add(id)
		}
	}
	return reads, writes
}

// flattenApplies returns the tables applied by a control flow, in
// program order, including both branches of conditionals.
func flattenApplies(stmts []ControlStmt) []string {
	var out []string
	var walk func([]ControlStmt)
	walk = func(ss []ControlStmt) {
		for _, s := range ss {
			switch st := s.(type) {
			case Apply:
				out = append(out, st.Table)
			case If:
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(stmts)
	return out
}

// TableDependencies analyzes one pipeline's control flow and returns
// the applied tables in program order (first occurrence only — an RMT
// table is physically placed once) plus, for each table, the earlier
// tables it depends on: those whose action writes overlap its match
// reads or action writes (match and action dependencies in RMT terms).
// A dependent table must be placed in a strictly later stage than every
// table in its dependency list; independent tables may share a stage.
// The placement pass (internal/compiler/place) consumes this to assign
// tables to budgeted physical stages.
func (p *Program) TableDependencies(flow []ControlStmt) (order []string, deps map[string][]string) {
	applies := flattenApplies(flow)
	deps = make(map[string][]string, len(applies))
	type effects struct{ reads, writes fieldSet }
	var eff []effects
	for _, name := range applies {
		if _, seen := deps[name]; seen {
			continue
		}
		r, w := p.tableEffects(p.Tables[name])
		var d []string
		for j, prev := range eff {
			if prev.writes.intersects(r) || prev.writes.intersects(w) {
				d = append(d, order[j])
			}
		}
		order = append(order, name)
		eff = append(eff, effects{reads: r, writes: w})
		deps[name] = d
	}
	return order, deps
}

// RegisterAccessors returns, for every stateful register touched by the
// program, the tables whose actions access it, in table declaration
// order. Registers accessed by no table are absent.
func (p *Program) RegisterAccessors() map[string][]string {
	return p.registerTables()
}

// allocateStages levels the table dependency graph of one pipeline: a
// table must be placed after any earlier table whose writes overlap its
// reads or writes (match and action dependencies in RMT terms).
// Independent tables share a stage. Returns per-table stage (1-based)
// and the stage count.
func (p *Program) allocateStages(flow []ControlStmt) (map[string]int, int) {
	applies := flattenApplies(flow)
	type info struct {
		reads, writes fieldSet
		stage         int
	}
	infos := make([]info, len(applies))
	stageOf := make(map[string]int, len(applies))
	max := 0
	for i, name := range applies {
		t := p.Tables[name]
		r, w := p.tableEffects(t)
		stage := 1
		for j := 0; j < i; j++ {
			prev := infos[j]
			if prev.writes.intersects(r) || prev.writes.intersects(w) {
				if prev.stage+1 > stage {
					stage = prev.stage + 1
				}
			}
		}
		// A table applied twice keeps its first placement (RMT tables are
		// physically placed once).
		if prior, seen := stageOf[name]; seen {
			stage = prior
		}
		infos[i] = info{reads: r, writes: w, stage: stage}
		stageOf[name] = stage
		if stage > max {
			max = stage
		}
	}
	return stageOf, max
}

// MetadataPrefix marks schema fields generated by the Mantis compiler;
// MetadataBits counts these, matching Table 1's "Metadata" column
// (marginal increase over the base program).
const MetadataPrefix = "p4r_meta_."

// TableFootprint is the memory cost of one table at a given capacity,
// split by memory kind the way RMT hardware charges it: the match key
// of a ternary table occupies TCAM (value + mask per key bit) while its
// bound action data lives in SRAM action memory; an exact table charges
// key and action data to SRAM together.
type TableFootprint struct {
	Name     string
	TCAM     bool
	Capacity int
	// KeyBits is the per-entry match storage (already doubled for TCAM
	// value+mask); DataBits the widest bound action-parameter set.
	KeyBits  int
	DataBits int
	// SRAMBits and TCAMBits are the totals across Capacity entries.
	SRAMBits int
	TCAMBits int
}

// EntryBits is the storage cost of one entry (match + action data).
func (f TableFootprint) EntryBits() int { return f.KeyBits + f.DataBits }

// FootprintOf computes the memory footprint of one table at the given
// capacity (pass t.Size, or a live occupancy, as capacity). The table's
// declared Size on a lowered program already includes the Mantis
// table-expansion blowup (alt-combinations × malleable duplication), so
// footprints of compiled programs charge the expanded entry count.
func (p *Program) FootprintOf(t *Table, capacity int) TableFootprint {
	keyBits := t.KeyWidthBits()
	tcam := t.HasTernary()
	if tcam {
		// TCAM stores a value and a mask per key bit.
		keyBits *= 2
	}
	dataBits := 0
	for _, an := range t.ActionNames {
		if a := p.Actions[an]; a != nil && a.ParamWidthBits() > dataBits {
			dataBits = a.ParamWidthBits()
		}
	}
	f := TableFootprint{Name: t.Name, TCAM: tcam, Capacity: capacity, KeyBits: keyBits, DataBits: dataBits}
	if tcam {
		// Only the match key occupies TCAM; bound action data lives in
		// SRAM action memory (which is why Fig. 13's tblWriteX TCAM
		// usage is constant in the malleable field width).
		f.TCAMBits = keyBits * capacity
		f.SRAMBits = dataBits * capacity
	} else {
		f.SRAMBits = (keyBits + dataBits) * capacity
	}
	return f
}

// EstimateResources computes the program's footprint. occupancy gives
// the populated entry count per table; tables not listed use their
// declared Size.
func (p *Program) EstimateResources(occupancy map[string]int) Resources {
	var res Resources
	ingStages, ingMax := p.allocateStages(p.Ingress)
	egrStages, egrMax := p.allocateStages(p.Egress)
	res.IngressStages, res.EgressStages = ingMax, egrMax
	res.Stages = ingMax + egrMax
	res.NumTables = len(p.TableOrder)
	res.NumRegisters = len(p.RegisterOrder)

	for _, name := range p.TableOrder {
		t := p.Tables[name]
		cap := t.Size
		if occ, ok := occupancy[name]; ok {
			cap = occ
		}
		f := p.FootprintOf(t, cap)
		stage := ingStages[name]
		if stage == 0 {
			stage = egrStages[name]
		}
		tr := TableResources{
			Name:      name,
			Stage:     stage,
			TCAM:      f.TCAM,
			Capacity:  cap,
			EntryBits: f.EntryBits(),
		}
		if f.TCAM {
			tr.Bits = f.TCAMBits
		} else {
			tr.Bits = f.SRAMBits
		}
		res.TCAMBits += f.TCAMBits
		res.SRAMBits += f.SRAMBits
		res.Tables = append(res.Tables, tr)
	}
	for _, name := range p.RegisterOrder {
		res.SRAMBits += p.Registers[name].Bits()
	}
	for _, fname := range p.Schema.Names() {
		if strings.HasPrefix(fname, MetadataPrefix) {
			id := p.Schema.MustID(fname)
			res.MetadataBits += p.Schema.Width(id)
		}
	}
	return res
}

// Delta returns the marginal resource increase of res over base, the way
// Table 1 reports each use case relative to a basic router.
func (res Resources) Delta(base Resources) Resources {
	return Resources{
		IngressStages: res.IngressStages - base.IngressStages,
		EgressStages:  res.EgressStages - base.EgressStages,
		Stages:        res.Stages - base.Stages,
		NumTables:     res.NumTables - base.NumTables,
		NumRegisters:  res.NumRegisters - base.NumRegisters,
		SRAMBits:      res.SRAMBits - base.SRAMBits,
		TCAMBits:      res.TCAMBits - base.TCAMBits,
		MetadataBits:  res.MetadataBits - base.MetadataBits,
	}
}

// RegisterStageViolation reports a stateful register reachable from
// tables in more than one pipeline stage — disallowed on real RMT
// hardware, where SRAM is bound to a single stage (§2 of the paper:
// "restrictions of SRAM accesses to a single element/stage").
type RegisterStageViolation struct {
	Register string
	// Stages maps each accessing table to its allocated stage.
	Stages map[string]int
}

// registerTables returns the tables whose actions touch each register.
func (p *Program) registerTables() map[string][]string {
	out := make(map[string][]string)
	for _, name := range p.TableOrder {
		t := p.Tables[name]
		names := t.ActionNames
		if t.DefaultAction != nil {
			names = append(append([]string(nil), names...), t.DefaultAction.Action)
		}
		seen := map[string]bool{}
		for _, an := range names {
			a := p.Actions[an]
			if a == nil {
				continue
			}
			for _, prim := range a.Body {
				var reg string
				switch op := prim.(type) {
				case RegisterRead:
					reg = op.Reg
				case RegisterWrite:
					reg = op.Reg
				case RegisterIncrement:
					reg = op.Reg
				}
				if reg != "" && !seen[reg] {
					seen[reg] = true
					out[reg] = append(out[reg], name)
				}
			}
		}
	}
	return out
}

// RegisterStageViolations returns every register accessed from more
// than one stage of the same pipeline. The Mantis compiler's generated
// programs are designed to avoid this (measurement registers are
// written from exactly one table); user programs can use it as a lint.
func (p *Program) RegisterStageViolations() []RegisterStageViolation {
	ingStages, _ := p.allocateStages(p.Ingress)
	egrStages, _ := p.allocateStages(p.Egress)
	var out []RegisterStageViolation
	for reg, tables := range p.registerTables() {
		stages := make(map[string]int)
		distinct := map[int]bool{}
		for _, t := range tables {
			st, inIngress := ingStages[t]
			if !inIngress {
				st = egrStages[t]
			}
			if st == 0 {
				continue // table not applied anywhere
			}
			stages[t] = st
			distinct[st] = true
		}
		if len(distinct) > 1 {
			out = append(out, RegisterStageViolation{Register: reg, Stages: stages})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Register < out[j].Register })
	return out
}
