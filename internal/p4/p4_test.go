package p4

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

// buildTestProgram constructs a small two-table program used across the
// tests: a forwarding table writing egress_spec and a counting table
// incrementing a register indexed by ingress port.
func buildTestProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram("test")
	p.DefineStandardMetadata()
	src := p.Schema.Define("ipv4.srcAddr", 32)
	dst := p.Schema.Define("ipv4.dstAddr", 32)
	egr := p.Schema.MustID(FieldEgressSpec)
	inp := p.Schema.MustID(FieldIngressPort)
	plen := p.Schema.MustID(FieldPacketLen)

	p.AddRegister(&Register{Name: "port_bytes", Width: 64, Instances: 64})

	p.AddAction(&Action{
		Name:   "set_egress",
		Params: []Param{{Name: "port", Width: 16}},
		Body: []Primitive{
			ModifyField{Dst: egr, DstName: FieldEgressSpec, Src: ParamOp(0, "port")},
		},
	})
	p.AddAction(&Action{Name: "do_drop", Body: []Primitive{Drop{}}})
	p.AddAction(&Action{
		Name: "count_bytes",
		Body: []Primitive{
			RegisterIncrement{Reg: "port_bytes", Index: FieldOp(inp, FieldIngressPort), By: FieldOp(plen, FieldPacketLen)},
		},
	})

	p.AddTable(&Table{
		Name: "forward",
		Keys: []MatchKey{
			{FieldName: "ipv4.dstAddr", Field: dst, Width: 32, Kind: MatchLPM},
		},
		ActionNames:   []string{"set_egress", "do_drop"},
		DefaultAction: &ActionCall{Action: "do_drop"},
		Size:          1024,
	})
	p.AddTable(&Table{
		Name:          "counter_tbl",
		ActionNames:   []string{"count_bytes"},
		DefaultAction: &ActionCall{Action: "count_bytes"},
		Size:          1,
	})
	p.Ingress = []ControlStmt{Apply{Table: "forward"}, Apply{Table: "counter_tbl"}}
	p.Egress = nil
	_ = src
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

func TestValidateOK(t *testing.T) { buildTestProgram(t) }

func TestValidateUnknownAction(t *testing.T) {
	p := NewProgram("bad")
	p.DefineStandardMetadata()
	p.AddTable(&Table{Name: "t", ActionNames: []string{"ghost"}})
	p.Ingress = []ControlStmt{Apply{Table: "t"}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v, want unknown action", err)
	}
}

func TestValidateUnknownTableInFlow(t *testing.T) {
	p := NewProgram("bad")
	p.Ingress = []ControlStmt{Apply{Table: "missing"}}
	if err := p.Validate(); err == nil {
		t.Fatal("expected error")
	}
}

func TestValidateDefaultActionArity(t *testing.T) {
	p := NewProgram("bad")
	p.AddAction(&Action{Name: "a", Params: []Param{{Name: "x", Width: 8}}})
	p.AddTable(&Table{Name: "t", ActionNames: []string{"a"}, DefaultAction: &ActionCall{Action: "a"}})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "takes 1 args") {
		t.Fatalf("err = %v, want arity error", err)
	}
}

func TestValidateUnknownRegister(t *testing.T) {
	p := NewProgram("bad")
	f := p.Schema.Define("m.x", 32)
	p.AddAction(&Action{Name: "a", Body: []Primitive{
		RegisterWrite{Reg: "nope", Index: ConstOp(0), Value: FieldOp(f, "m.x")},
	}})
	p.AddTable(&Table{Name: "t", ActionNames: []string{"a"}})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v, want unknown register", err)
	}
}

func TestDuplicateTablePanics(t *testing.T) {
	p := NewProgram("dup")
	p.AddTable(&Table{Name: "t"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddTable did not panic")
		}
	}()
	p.AddTable(&Table{Name: "t"})
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		op   ALUOp
		a, b uint64
		want uint64
	}{
		{ALUAdd, 3, 4, 7},
		{ALUSub, 10, 4, 6},
		{ALUAnd, 0xFF, 0x0F, 0x0F},
		{ALUOr, 0xF0, 0x0F, 0xFF},
		{ALUXor, 0xFF, 0x0F, 0xF0},
		{ALUShl, 1, 4, 16},
		{ALUShr, 16, 4, 1},
		{ALUMin, 5, 9, 5},
		{ALUMax, 5, 9, 9},
	}
	for _, c := range cases {
		if got := c.op.apply(c.a, c.b); got != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestTableHelpers(t *testing.T) {
	tbl := &Table{Keys: []MatchKey{
		{Width: 32, Kind: MatchExact},
		{Width: 16, Kind: MatchTernary},
	}}
	if !tbl.HasTernary() {
		t.Fatal("HasTernary = false")
	}
	if tbl.KeyWidthBits() != 48 {
		t.Fatalf("KeyWidthBits = %d", tbl.KeyWidthBits())
	}
	exact := &Table{Keys: []MatchKey{{Width: 8, Kind: MatchExact}}}
	if exact.HasTernary() {
		t.Fatal("exact table reports ternary")
	}
}

func TestStageAllocationDependency(t *testing.T) {
	p := buildTestProgram(t)
	// forward writes egress_spec; counter_tbl reads ingress_port &
	// packet_length only, so they are independent and share stage 1.
	res := p.EstimateResources(nil)
	if res.IngressStages != 1 {
		t.Fatalf("IngressStages = %d, want 1 (independent tables share)", res.IngressStages)
	}
}

func TestStageAllocationChain(t *testing.T) {
	p := NewProgram("chain")
	p.DefineStandardMetadata()
	a := p.Schema.Define("m.a", 32)
	bf := p.Schema.Define("m.b", 32)
	p.AddAction(&Action{Name: "wa", Body: []Primitive{ModifyField{Dst: a, DstName: "m.a", Src: ConstOp(1)}}})
	p.AddAction(&Action{Name: "rb", Body: []Primitive{ModifyField{Dst: bf, DstName: "m.b", Src: FieldOp(a, "m.a")}}})
	p.AddTable(&Table{Name: "t1", ActionNames: []string{"wa"}, DefaultAction: &ActionCall{Action: "wa"}, Size: 1})
	p.AddTable(&Table{Name: "t2", Keys: []MatchKey{{FieldName: "m.a", Field: a, Width: 32, Kind: MatchExact}},
		ActionNames: []string{"rb"}, Size: 8})
	p.Ingress = []ControlStmt{Apply{Table: "t1"}, Apply{Table: "t2"}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res := p.EstimateResources(nil)
	if res.IngressStages != 2 {
		t.Fatalf("IngressStages = %d, want 2 (t2 matches field t1 writes)", res.IngressStages)
	}
}

func TestResourceAccounting(t *testing.T) {
	p := buildTestProgram(t)
	res := p.EstimateResources(nil)
	if res.NumTables != 2 || res.NumRegisters != 1 {
		t.Fatalf("tables=%d regs=%d", res.NumTables, res.NumRegisters)
	}
	// forward: LPM -> TCAM; only the match key (value+mask) lives in
	// TCAM: 2*32 bits x 1024 entries.
	wantTCAM := 2 * 32 * 1024
	if res.TCAMBits != wantTCAM {
		t.Fatalf("TCAMBits = %d, want %d", res.TCAMBits, wantTCAM)
	}
	// SRAM: forward's action data (16b x 1024) + counter_tbl (0) +
	// register 64x64.
	if res.SRAMBits != 16*1024+64*64 {
		t.Fatalf("SRAMBits = %d, want %d", res.SRAMBits, 16*1024+64*64)
	}
}

func TestResourceOccupancyOverride(t *testing.T) {
	p := buildTestProgram(t)
	full := p.EstimateResources(nil).TCAMBits
	half := p.EstimateResources(map[string]int{"forward": 512}).TCAMBits
	if half*2 != full {
		t.Fatalf("occupancy override: half=%d full=%d", half, full)
	}
}

func TestMetadataBits(t *testing.T) {
	p := NewProgram("meta")
	p.Schema.Define("p4r_meta_.value_var", 16)
	p.Schema.Define("p4r_meta_.alt", 1)
	p.Schema.Define("hdr.x", 32)
	res := p.EstimateResources(nil)
	if res.MetadataBits != 17 {
		t.Fatalf("MetadataBits = %d, want 17", res.MetadataBits)
	}
}

func TestResourcesDelta(t *testing.T) {
	a := Resources{Stages: 5, NumTables: 10, SRAMBits: 1000, TCAMBits: 200, MetadataBits: 64}
	b := Resources{Stages: 3, NumTables: 8, SRAMBits: 400, TCAMBits: 200, MetadataBits: 0}
	d := a.Delta(b)
	if d.Stages != 2 || d.NumTables != 2 || d.SRAMBits != 600 || d.TCAMBits != 0 || d.MetadataBits != 64 {
		t.Fatalf("Delta = %+v", d)
	}
}

func TestPrintContainsDeclarations(t *testing.T) {
	p := buildTestProgram(t)
	out := p.Print()
	for _, want := range []string{
		"table forward", "reads {", "ipv4.dstAddr : lpm",
		"action set_egress(port)", "register port_bytes",
		"apply(forward);", "control ingress",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q", want)
		}
	}
	if p.LineCount() < 20 {
		t.Fatalf("LineCount = %d, suspiciously small", p.LineCount())
	}
}

func TestPrintControlIf(t *testing.T) {
	p := NewProgram("iftest")
	f := p.Schema.Define("m.x", 8)
	p.AddAction(&Action{Name: "nop", Body: []Primitive{NoOp{}}})
	p.AddTable(&Table{Name: "t", ActionNames: []string{"nop"}})
	p.Ingress = []ControlStmt{
		If{
			Cond: CondExpr{Left: FieldOp(f, "m.x"), Op: CmpGT, Right: ConstOp(3)},
			Then: []ControlStmt{Apply{Table: "t"}},
		},
	}
	out := p.Print()
	if !strings.Contains(out, "if (m.x > 3)") {
		t.Fatalf("missing if condition in:\n%s", out)
	}
}

func TestFlattenAppliesIncludesBranches(t *testing.T) {
	p := NewProgram("flat")
	f := p.Schema.Define("m.x", 8)
	stmts := []ControlStmt{
		Apply{Table: "a"},
		If{
			Cond: CondExpr{Left: FieldOp(f, "m.x"), Op: CmpEQ, Right: ConstOp(0)},
			Then: []ControlStmt{Apply{Table: "b"}},
			Else: []ControlStmt{Apply{Table: "c"}},
		},
	}
	got := flattenApplies(stmts)
	want := []string{"a", "b", "c"}
	if len(got) != 3 {
		t.Fatalf("flattenApplies = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flattenApplies = %v, want %v", got, want)
		}
	}
}

type fakeEnv struct {
	fields map[packet.FieldID]uint64
	regs   map[string]map[uint64]uint64
	params []uint64
	drops  int
	recirc int
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{fields: map[packet.FieldID]uint64{}, regs: map[string]map[uint64]uint64{}}
}
func (e *fakeEnv) Get(id packet.FieldID) uint64    { return e.fields[id] }
func (e *fakeEnv) Set(id packet.FieldID, v uint64) { e.fields[id] = v }
func (e *fakeEnv) RegRead(r string, i uint64) uint64 {
	return e.regs[r][i]
}
func (e *fakeEnv) RegWrite(r string, i uint64, v uint64) {
	if e.regs[r] == nil {
		e.regs[r] = map[uint64]uint64{}
	}
	e.regs[r][i] = v
}
func (e *fakeEnv) Hash(string) uint64 { return 42 }
func (e *fakeEnv) Drop()              { e.drops++ }
func (e *fakeEnv) Param(i int) uint64 { return e.params[i] }
func (e *fakeEnv) Recirculate()       { e.recirc++ }

func TestPrimitiveExec(t *testing.T) {
	env := newFakeEnv()
	env.params = []uint64{99}
	ModifyField{Dst: 1, Src: ParamOp(0, "p")}.Exec(env)
	if env.fields[1] != 99 {
		t.Fatal("ModifyField from param failed")
	}
	ALU{Op: ALUAdd, Dst: 2, A: FieldOp(1, ""), B: ConstOp(1)}.Exec(env)
	if env.fields[2] != 100 {
		t.Fatal("ALU add failed")
	}
	RegisterWrite{Reg: "r", Index: ConstOp(3), Value: FieldOp(2, "")}.Exec(env)
	RegisterIncrement{Reg: "r", Index: ConstOp(3), By: ConstOp(5)}.Exec(env)
	RegisterRead{Dst: 4, Reg: "r", Index: ConstOp(3)}.Exec(env)
	if env.fields[4] != 105 {
		t.Fatalf("register round trip = %d, want 105", env.fields[4])
	}
	Drop{}.Exec(env)
	if env.drops != 1 {
		t.Fatal("Drop not recorded")
	}
	ModifyFieldWithHash{Dst: 5, Hash: "h", Base: 10, Size: 8}.Exec(env)
	if env.fields[5] != 10+42%8 {
		t.Fatalf("hash offset = %d", env.fields[5])
	}
	ModifyFieldWithHash{Dst: 6, Hash: "h", Size: 0}.Exec(env)
	if env.fields[6] != 42 {
		t.Fatal("raw hash value not stored")
	}
	Recirculate{}.Exec(env)
	if env.recirc != 1 {
		t.Fatal("Recirculate not propagated")
	}
}

// Property: ALU add/sub are inverses modulo 2^64 for any operands.
func TestPropertyALUAddSubInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		return ALUSub.apply(ALUAdd.apply(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: min/max ordering invariant.
func TestPropertyMinMax(t *testing.T) {
	f := func(a, b uint64) bool {
		lo, hi := ALUMin.apply(a, b), ALUMax.apply(a, b)
		return lo <= hi && (lo == a || lo == b) && (hi == a || hi == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterStageViolations(t *testing.T) {
	p := NewProgram("stages")
	p.DefineStandardMetadata()
	a := p.Schema.Define("m.a", 32)
	p.AddRegister(&Register{Name: "shared", Width: 32, Instances: 4})
	// t1 writes m.a and touches the register; t2 matches m.a (forcing a
	// later stage) and touches the same register: violation.
	p.AddAction(&Action{Name: "w1", Body: []Primitive{
		ModifyField{Dst: a, DstName: "m.a", Src: ConstOp(1)},
		RegisterIncrement{Reg: "shared", Index: ConstOp(0), By: ConstOp(1)},
	}})
	p.AddAction(&Action{Name: "w2", Body: []Primitive{
		RegisterIncrement{Reg: "shared", Index: ConstOp(1), By: ConstOp(1)},
	}})
	p.AddTable(&Table{Name: "t1", ActionNames: []string{"w1"}, DefaultAction: &ActionCall{Action: "w1"}, Size: 1})
	p.AddTable(&Table{Name: "t2", Keys: []MatchKey{{FieldName: "m.a", Field: a, Width: 32, Kind: MatchExact}},
		ActionNames: []string{"w2"}, Size: 4})
	p.Ingress = []ControlStmt{Apply{Table: "t1"}, Apply{Table: "t2"}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	v := p.RegisterStageViolations()
	if len(v) != 1 || v[0].Register != "shared" {
		t.Fatalf("violations = %+v", v)
	}
	if v[0].Stages["t1"] == v[0].Stages["t2"] {
		t.Fatalf("stages should differ: %+v", v[0].Stages)
	}
}

func TestNoStageViolationSingleTable(t *testing.T) {
	p := buildTestProgram(t)
	if v := p.RegisterStageViolations(); len(v) != 0 {
		t.Fatalf("unexpected violations: %+v", v)
	}
}
