// Package p4 defines the intermediate representation of a P4-14 subset
// program: header/metadata layouts, match-action tables, actions built
// from primitive operations, stateful registers, hash calculations, and
// the ingress/egress control flow.
//
// A Program is the *static* artifact produced either directly (for
// hand-built baselines) or by the Mantis compiler from P4R source. It is
// immutable once built; runtime state (table entries, register contents,
// counters) lives in the RMT switch model (internal/rmt), which
// instantiates a Program the way loading a compiled P4 binary configures
// a switch ASIC.
package p4

import (
	"fmt"

	"repro/internal/packet"
)

// MatchKind is the match type of one table key column.
type MatchKind int

// Match kinds supported by RMT tables.
const (
	MatchExact MatchKind = iota
	MatchTernary
	MatchLPM
	MatchRange
)

func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchTernary:
		return "ternary"
	case MatchLPM:
		return "lpm"
	case MatchRange:
		return "range"
	}
	return fmt.Sprintf("MatchKind(%d)", int(k))
}

// MatchKey is one column of a table's match specification.
type MatchKey struct {
	FieldName string
	Field     packet.FieldID
	Width     int
	Kind      MatchKind
	// StaticMask, when non-zero, is ANDed with the packet field before
	// matching (the P4-14 `reads { f mask 0xff : ... }` qualifier).
	StaticMask uint64
}

// Table is a match-action table declaration.
type Table struct {
	Name string
	Keys []MatchKey
	// ActionNames lists the actions entries may invoke.
	ActionNames []string
	// DefaultAction runs on a miss; nil means no-op on miss.
	DefaultAction *ActionCall
	// Size is the declared capacity in entries (0 = unbounded).
	Size int
	// Malleable marks tables declared `malleable` in P4R source. The
	// Mantis compiler adds the vv version column to these.
	Malleable bool
}

// HasTernary reports whether any key column needs TCAM (ternary, lpm, or
// range matching).
func (t *Table) HasTernary() bool {
	for _, k := range t.Keys {
		if k.Kind != MatchExact {
			return true
		}
	}
	return false
}

// KeyWidthBits is the total width of all match columns.
func (t *Table) KeyWidthBits() int {
	w := 0
	for _, k := range t.Keys {
		w += k.Width
	}
	return w
}

// ActionCall names an action plus its bound data arguments (used for
// default actions and table entries).
type ActionCall struct {
	Action string
	Data   []uint64
}

// Param is a runtime action parameter supplied by table entries.
type Param struct {
	Name  string
	Width int
}

// Action is a named action: a parameter list and a primitive-op body.
type Action struct {
	Name   string
	Params []Param
	Body   []Primitive
}

// ParamIndex returns the index of the named parameter, or -1.
func (a *Action) ParamIndex(name string) int {
	for i, p := range a.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// ParamWidthBits is the total width of all parameters (action data),
// which bounds how much configuration a single table entry can carry —
// the constraint that forces the Mantis compiler to split init tables.
func (a *Action) ParamWidthBits() int {
	w := 0
	for _, p := range a.Params {
		w += p.Width
	}
	return w
}

// Register is a stateful SRAM element: an array of Instances cells, each
// Width bits wide. In real RMT hardware a register lives in a single
// stage and is accessible once per packet; the rmt model enforces this
// when StrictStageAccess is enabled.
type Register struct {
	Name      string
	Width     int
	Instances int
}

// Bits is the total SRAM footprint of the register in bits.
func (r *Register) Bits() int { return r.Width * r.Instances }

// HashAlgo selects the hash function of a field-list calculation.
type HashAlgo int

// Supported hash algorithms.
const (
	HashCRC16 HashAlgo = iota
	HashCRC32
	HashIdentity
)

// HashCalc computes a hash over a list of fields; actions reference it by
// name (modify_field_with_hash_based_offset). Seed lets reactions rotate
// the function, and the field list itself may be rewritten by malleable
// fields (use case #3).
type HashCalc struct {
	Name   string
	Fields []packet.FieldID
	Algo   HashAlgo
	Width  int // output width in bits
}

// ControlStmt is one step in a control flow: apply a table or branch.
type ControlStmt interface{ controlStmt() }

// Apply applies the named table to the packet.
type Apply struct{ Table string }

// If branches the control flow on a field comparison.
type If struct {
	Cond CondExpr
	Then []ControlStmt
	Else []ControlStmt
}

func (Apply) controlStmt() {}
func (If) controlStmt()    {}

// CmpOp is a comparison operator in control-flow conditions.
type CmpOp int

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// CondExpr compares a field against a field or constant.
type CondExpr struct {
	Left  Operand
	Op    CmpOp
	Right Operand
}

// Program is a complete P4 program ready to load into a switch model.
type Program struct {
	Name   string
	Schema *packet.Schema

	Actions   map[string]*Action
	Tables    map[string]*Table
	Registers map[string]*Register
	Hashes    map[string]*HashCalc

	// TableOrder and RegisterOrder preserve declaration order for
	// deterministic stage allocation and printing.
	TableOrder    []string
	RegisterOrder []string

	Ingress []ControlStmt
	Egress  []ControlStmt
}

// NewProgram returns an empty program with a fresh schema.
func NewProgram(name string) *Program {
	return &Program{
		Name:      name,
		Schema:    packet.NewSchema(),
		Actions:   make(map[string]*Action),
		Tables:    make(map[string]*Table),
		Registers: make(map[string]*Register),
		Hashes:    make(map[string]*HashCalc),
	}
}

// AddAction registers an action; duplicate names panic (compiler bug).
func (p *Program) AddAction(a *Action) *Action {
	if _, dup := p.Actions[a.Name]; dup {
		panic(fmt.Sprintf("p4: duplicate action %q", a.Name))
	}
	p.Actions[a.Name] = a
	return a
}

// AddTable registers a table; duplicate names panic.
func (p *Program) AddTable(t *Table) *Table {
	if _, dup := p.Tables[t.Name]; dup {
		panic(fmt.Sprintf("p4: duplicate table %q", t.Name))
	}
	p.Tables[t.Name] = t
	p.TableOrder = append(p.TableOrder, t.Name)
	return t
}

// AddRegister registers a stateful register; duplicate names panic.
func (p *Program) AddRegister(r *Register) *Register {
	if _, dup := p.Registers[r.Name]; dup {
		panic(fmt.Sprintf("p4: duplicate register %q", r.Name))
	}
	p.Registers[r.Name] = r
	p.RegisterOrder = append(p.RegisterOrder, r.Name)
	return r
}

// AddHash registers a hash calculation; duplicate names panic.
func (p *Program) AddHash(h *HashCalc) *HashCalc {
	if _, dup := p.Hashes[h.Name]; dup {
		panic(fmt.Sprintf("p4: duplicate hash calculation %q", h.Name))
	}
	p.Hashes[h.Name] = h
	return h
}

// Validate checks cross-references: every table action exists, every
// field/register/hash referenced by actions and control flow is defined,
// and control flow applies only declared tables.
func (p *Program) Validate() error {
	for _, name := range p.TableOrder {
		t := p.Tables[name]
		for _, an := range t.ActionNames {
			if _, ok := p.Actions[an]; !ok {
				return fmt.Errorf("table %s: unknown action %q", name, an)
			}
		}
		if d := t.DefaultAction; d != nil {
			a, ok := p.Actions[d.Action]
			if !ok {
				return fmt.Errorf("table %s: unknown default action %q", name, d.Action)
			}
			if len(d.Data) != len(a.Params) {
				return fmt.Errorf("table %s: default action %q takes %d args, got %d",
					name, d.Action, len(a.Params), len(d.Data))
			}
		}
		for _, k := range t.Keys {
			if k.Field < 0 || int(k.Field) >= p.Schema.NumFields() {
				return fmt.Errorf("table %s: match key %q not resolved", name, k.FieldName)
			}
		}
	}
	for _, a := range p.Actions {
		for i, prim := range a.Body {
			if err := prim.check(p, a); err != nil {
				return fmt.Errorf("action %s, op %d: %w", a.Name, i, err)
			}
		}
	}
	var checkFlow func(stmts []ControlStmt) error
	checkFlow = func(stmts []ControlStmt) error {
		for _, s := range stmts {
			switch st := s.(type) {
			case Apply:
				if _, ok := p.Tables[st.Table]; !ok {
					return fmt.Errorf("control flow applies unknown table %q", st.Table)
				}
			case If:
				if err := checkFlow(st.Then); err != nil {
					return err
				}
				if err := checkFlow(st.Else); err != nil {
					return err
				}
			default:
				return fmt.Errorf("unknown control statement %T", s)
			}
		}
		return nil
	}
	if err := checkFlow(p.Ingress); err != nil {
		return fmt.Errorf("ingress: %w", err)
	}
	if err := checkFlow(p.Egress); err != nil {
		return fmt.Errorf("egress: %w", err)
	}
	return nil
}
