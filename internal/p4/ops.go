package p4

import (
	"fmt"

	"repro/internal/packet"
)

// Standard metadata field names. The RMT switch model populates these at
// pipeline entry and consumes them at pipeline exit, mirroring the intrinsic
// metadata of real RMT targets.
const (
	// StdMetadataPrefix marks every intrinsic metadata field. Fields
	// under it (like those under MetadataPrefix) are switch-local
	// scratch, not wire state.
	StdMetadataPrefix = "standard_metadata."

	FieldIngressPort = "standard_metadata.ingress_port"
	FieldEgressSpec  = "standard_metadata.egress_spec"
	FieldPacketLen   = "standard_metadata.packet_length"
	FieldTimestamp   = "standard_metadata.ingress_global_timestamp"
	FieldEnqQdepth   = "standard_metadata.enq_qdepth"
	FieldEgressPort  = "standard_metadata.egress_port"
	FieldPriority    = "standard_metadata.priority"
)

// DefineStandardMetadata registers the intrinsic metadata fields on a
// program's schema. Every program loaded into the rmt model must call
// this (NewProgram callers typically do it first).
func (p *Program) DefineStandardMetadata() {
	p.Schema.Define(FieldIngressPort, 16)
	p.Schema.Define(FieldEgressSpec, 16)
	p.Schema.Define(FieldPacketLen, 32)
	p.Schema.Define(FieldTimestamp, 48)
	p.Schema.Define(FieldEnqQdepth, 24)
	p.Schema.Define(FieldEgressPort, 16)
	p.Schema.Define(FieldPriority, 8)
}

// Env is the execution environment a switch model provides to primitive
// operations: field access on the current packet, stateful register
// access, hash evaluation, and packet disposition.
type Env interface {
	Get(packet.FieldID) uint64
	Set(packet.FieldID, uint64)
	RegRead(reg string, idx uint64) uint64
	RegWrite(reg string, idx uint64, v uint64)
	Hash(name string) uint64
	Drop()
	// Param returns the i'th action-data value bound by the matched entry.
	Param(i int) uint64
}

// OperandKind discriminates Operand variants.
type OperandKind int

// Operand kinds.
const (
	OpField OperandKind = iota
	OpConst
	OpParam
)

// Operand is a value source in a primitive op: a packet field, an
// immediate constant, or a runtime action parameter.
type Operand struct {
	Kind  OperandKind
	Field packet.FieldID
	Name  string // field name, for printing
	Const uint64
	Param int
	// ParamName is the declared name, for printing.
	ParamName string
}

// FieldOp returns an operand reading the given field.
func FieldOp(id packet.FieldID, name string) Operand {
	return Operand{Kind: OpField, Field: id, Name: name}
}

// ConstOp returns an immediate-constant operand.
func ConstOp(v uint64) Operand { return Operand{Kind: OpConst, Const: v} }

// ParamOp returns an operand reading the i'th action parameter.
func ParamOp(i int, name string) Operand {
	return Operand{Kind: OpParam, Param: i, ParamName: name}
}

// Value evaluates the operand.
func (o Operand) Value(env Env) uint64 {
	switch o.Kind {
	case OpField:
		return env.Get(o.Field)
	case OpConst:
		return o.Const
	default:
		return env.Param(o.Param)
	}
}

func (o Operand) check(p *Program, a *Action) error {
	switch o.Kind {
	case OpField:
		if o.Field < 0 || int(o.Field) >= p.Schema.NumFields() {
			return fmt.Errorf("unresolved field operand %q", o.Name)
		}
	case OpParam:
		if o.Param < 0 || o.Param >= len(a.Params) {
			return fmt.Errorf("action parameter index %d out of range", o.Param)
		}
	}
	return nil
}

// Primitive is one step of an action body. The set of primitives matches
// the RMT constraint envelope described in §2 of the paper: simple ALU
// ops only — no multiplication, division, or loops.
type Primitive interface {
	Exec(env Env)
	check(p *Program, a *Action) error
}

func checkDst(p *Program, id packet.FieldID, name string) error {
	if id < 0 || int(id) >= p.Schema.NumFields() {
		return fmt.Errorf("unresolved destination field %q", name)
	}
	return nil
}

// ModifyField sets Dst to the value of Src.
type ModifyField struct {
	Dst     packet.FieldID
	DstName string
	Src     Operand
}

// Exec implements Primitive.
func (m ModifyField) Exec(env Env) { env.Set(m.Dst, m.Src.Value(env)) }
func (m ModifyField) check(p *Program, a *Action) error {
	if err := checkDst(p, m.Dst, m.DstName); err != nil {
		return err
	}
	return m.Src.check(p, a)
}

// ALUOp is a two-operand arithmetic/logic operation kind.
type ALUOp int

// ALU operation kinds.
const (
	ALUAdd ALUOp = iota
	ALUSub
	ALUAnd
	ALUOr
	ALUXor
	ALUShl
	ALUShr
	ALUMin
	ALUMax
)

func (op ALUOp) String() string {
	switch op {
	case ALUAdd:
		return "add"
	case ALUSub:
		return "subtract"
	case ALUAnd:
		return "bit_and"
	case ALUOr:
		return "bit_or"
	case ALUXor:
		return "bit_xor"
	case ALUShl:
		return "shift_left"
	case ALUShr:
		return "shift_right"
	case ALUMin:
		return "min"
	case ALUMax:
		return "max"
	}
	return fmt.Sprintf("ALUOp(%d)", int(op))
}

// Apply computes the operation over two operand values. Exposed so
// execution engines (e.g. the rmt compiled pipeline) can evaluate ALU
// primitives without going through the Primitive interface.
func (op ALUOp) Apply(a, b uint64) uint64 { return op.apply(a, b) }

func (op ALUOp) apply(a, b uint64) uint64 {
	switch op {
	case ALUAdd:
		return a + b
	case ALUSub:
		return a - b
	case ALUAnd:
		return a & b
	case ALUOr:
		return a | b
	case ALUXor:
		return a ^ b
	case ALUShl:
		return a << (b & 63)
	case ALUShr:
		return a >> (b & 63)
	case ALUMin:
		if a < b {
			return a
		}
		return b
	case ALUMax:
		if a > b {
			return a
		}
		return b
	}
	panic("p4: unknown ALU op")
}

// ALU computes Dst = A op B (the P4-14 three-operand primitives add,
// subtract, bit_and, ...). Results wrap modulo the destination width.
type ALU struct {
	Op      ALUOp
	Dst     packet.FieldID
	DstName string
	A, B    Operand
}

// Exec implements Primitive.
func (x ALU) Exec(env Env) { env.Set(x.Dst, x.Op.apply(x.A.Value(env), x.B.Value(env))) }
func (x ALU) check(p *Program, a *Action) error {
	if err := checkDst(p, x.Dst, x.DstName); err != nil {
		return err
	}
	if err := x.A.check(p, a); err != nil {
		return err
	}
	return x.B.check(p, a)
}

// Drop marks the packet to be discarded at the end of the pipeline.
type Drop struct{}

// Exec implements Primitive.
func (Drop) Exec(env Env)                  { env.Drop() }
func (Drop) check(*Program, *Action) error { return nil }

// NoOp does nothing.
type NoOp struct{}

// Exec implements Primitive.
func (NoOp) Exec(Env)                      {}
func (NoOp) check(*Program, *Action) error { return nil }

// RegisterRead loads Reg[Index] into Dst.
type RegisterRead struct {
	Dst     packet.FieldID
	DstName string
	Reg     string
	Index   Operand
}

// Exec implements Primitive.
func (r RegisterRead) Exec(env Env) { env.Set(r.Dst, env.RegRead(r.Reg, r.Index.Value(env))) }
func (r RegisterRead) check(p *Program, a *Action) error {
	if err := checkDst(p, r.Dst, r.DstName); err != nil {
		return err
	}
	if _, ok := p.Registers[r.Reg]; !ok {
		return fmt.Errorf("unknown register %q", r.Reg)
	}
	return r.Index.check(p, a)
}

// RegisterWrite stores Value into Reg[Index].
type RegisterWrite struct {
	Reg   string
	Index Operand
	Value Operand
}

// Exec implements Primitive.
func (r RegisterWrite) Exec(env Env) { env.RegWrite(r.Reg, r.Index.Value(env), r.Value.Value(env)) }
func (r RegisterWrite) check(p *Program, a *Action) error {
	if _, ok := p.Registers[r.Reg]; !ok {
		return fmt.Errorf("unknown register %q", r.Reg)
	}
	if err := r.Index.check(p, a); err != nil {
		return err
	}
	return r.Value.check(p, a)
}

// RegisterIncrement adds By to Reg[Index] — the counter idiom
// (count / bytes counters) expressed as a stateful register update.
type RegisterIncrement struct {
	Reg   string
	Index Operand
	By    Operand
}

// Exec implements Primitive.
func (r RegisterIncrement) Exec(env Env) {
	idx := r.Index.Value(env)
	env.RegWrite(r.Reg, idx, env.RegRead(r.Reg, idx)+r.By.Value(env))
}
func (r RegisterIncrement) check(p *Program, a *Action) error {
	if _, ok := p.Registers[r.Reg]; !ok {
		return fmt.Errorf("unknown register %q", r.Reg)
	}
	if err := r.Index.check(p, a); err != nil {
		return err
	}
	return r.By.check(p, a)
}

// ModifyFieldWithHash sets Dst = Base + (hash(fields) % Size), the P4-14
// modify_field_with_hash_based_offset primitive. Size == 0 stores the raw
// hash value.
type ModifyFieldWithHash struct {
	Dst     packet.FieldID
	DstName string
	Hash    string
	Base    uint64
	Size    uint64
}

// Exec implements Primitive.
func (m ModifyFieldWithHash) Exec(env Env) {
	h := env.Hash(m.Hash)
	if m.Size > 0 {
		h = m.Base + h%m.Size
	}
	env.Set(m.Dst, h)
}
func (m ModifyFieldWithHash) check(p *Program, a *Action) error {
	if err := checkDst(p, m.Dst, m.DstName); err != nil {
		return err
	}
	if _, ok := p.Hashes[m.Hash]; !ok {
		return fmt.Errorf("unknown hash calculation %q", m.Hash)
	}
	return nil
}

// Recirculate sends the packet back to the start of the ingress pipeline
// after the egress pipeline completes.
type Recirculate struct{}

// Exec implements Primitive; the rmt model watches for the recirculate
// flag via the env.
func (Recirculate) Exec(env Env) {
	if r, ok := env.(interface{ Recirculate() }); ok {
		r.Recirculate()
	}
}
func (Recirculate) check(*Program, *Action) error { return nil }
