package p4

import (
	"fmt"
	"sort"
	"strings"
)

// Print renders the program as P4-14-style source text. The output is
// what cmd/mantisc shows as the generated program, and its line count is
// the "P4 LoC" column of Table 1.
func (p *Program) Print() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Program %s — generated P4-14\n", p.Name)

	// Group fields into header_type declarations by dotted prefix.
	groups := map[string][]string{}
	var order []string
	for _, name := range p.Schema.Names() {
		dot := strings.LastIndex(name, ".")
		prefix, field := "scalars", name
		if dot >= 0 {
			prefix, field = name[:dot], name[dot+1:]
		}
		if _, ok := groups[prefix]; !ok {
			order = append(order, prefix)
		}
		groups[prefix] = append(groups[prefix], field)
	}
	sort.Strings(order)
	for _, prefix := range order {
		fmt.Fprintf(&b, "header_type %s_t {\n  fields {\n", sanitize(prefix))
		for _, f := range groups[prefix] {
			full := prefix + "." + f
			id, _ := p.Schema.Lookup(full)
			fmt.Fprintf(&b, "    %s : %d;\n", f, p.Schema.Width(id))
		}
		b.WriteString("  }\n}\n")
		kind := "header"
		if strings.HasPrefix(prefix, "p4r_meta_") || strings.HasPrefix(prefix, "standard_metadata") || strings.HasPrefix(prefix, "meta") {
			kind = "metadata"
		}
		fmt.Fprintf(&b, "%s %s_t %s;\n", kind, sanitize(prefix), prefix)
	}

	for _, name := range p.RegisterOrder {
		r := p.Registers[name]
		fmt.Fprintf(&b, "register %s {\n  width : %d;\n  instance_count : %d;\n}\n", r.Name, r.Width, r.Instances)
	}

	var hashNames []string
	for name := range p.Hashes {
		hashNames = append(hashNames, name)
	}
	sort.Strings(hashNames)
	for _, name := range hashNames {
		h := p.Hashes[name]
		fmt.Fprintf(&b, "field_list %s_fields {\n", h.Name)
		for _, f := range h.Fields {
			fmt.Fprintf(&b, "  %s;\n", p.Schema.Name(f))
		}
		b.WriteString("}\n")
		algo := map[HashAlgo]string{HashCRC16: "crc16", HashCRC32: "crc32", HashIdentity: "identity"}[h.Algo]
		fmt.Fprintf(&b, "field_list_calculation %s {\n  input { %s_fields; }\n  algorithm : %s;\n  output_width : %d;\n}\n",
			h.Name, h.Name, algo, h.Width)
	}

	var actionNames []string
	for name := range p.Actions {
		actionNames = append(actionNames, name)
	}
	sort.Strings(actionNames)
	for _, name := range actionNames {
		a := p.Actions[name]
		params := make([]string, len(a.Params))
		for i, pr := range a.Params {
			params[i] = pr.Name
		}
		fmt.Fprintf(&b, "action %s(%s) {\n", a.Name, strings.Join(params, ", "))
		for _, prim := range a.Body {
			fmt.Fprintf(&b, "  %s;\n", p.printPrimitive(prim))
		}
		b.WriteString("}\n")
	}

	for _, name := range p.TableOrder {
		t := p.Tables[name]
		fmt.Fprintf(&b, "table %s {\n", t.Name)
		if len(t.Keys) > 0 {
			b.WriteString("  reads {\n")
			for _, k := range t.Keys {
				fmt.Fprintf(&b, "    %s : %s;\n", k.FieldName, k.Kind)
			}
			b.WriteString("  }\n")
		}
		b.WriteString("  actions {\n")
		for _, an := range t.ActionNames {
			fmt.Fprintf(&b, "    %s;\n", an)
		}
		b.WriteString("  }\n")
		if t.DefaultAction != nil {
			fmt.Fprintf(&b, "  default_action : %s(%s);\n", t.DefaultAction.Action, joinUints(t.DefaultAction.Data))
		}
		if t.Size > 0 {
			fmt.Fprintf(&b, "  size : %d;\n", t.Size)
		}
		b.WriteString("}\n")
	}

	b.WriteString("control ingress {\n")
	p.printFlow(&b, p.Ingress, 1)
	b.WriteString("}\n")
	b.WriteString("control egress {\n")
	p.printFlow(&b, p.Egress, 1)
	b.WriteString("}\n")
	return b.String()
}

func sanitize(s string) string { return strings.ReplaceAll(s, ".", "_") }

func joinUints(vs []uint64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ", ")
}

func (p *Program) printOperand(o Operand) string {
	switch o.Kind {
	case OpField:
		if o.Name != "" {
			return o.Name
		}
		return p.Schema.Name(o.Field)
	case OpConst:
		return fmt.Sprintf("%d", o.Const)
	default:
		if o.ParamName != "" {
			return o.ParamName
		}
		return fmt.Sprintf("param%d", o.Param)
	}
}

func (p *Program) printPrimitive(prim Primitive) string {
	switch op := prim.(type) {
	case ModifyField:
		return fmt.Sprintf("modify_field(%s, %s)", p.dstName(op.DstName, int(op.Dst)), p.printOperand(op.Src))
	case ALU:
		return fmt.Sprintf("%s(%s, %s, %s)", op.Op, p.dstName(op.DstName, int(op.Dst)), p.printOperand(op.A), p.printOperand(op.B))
	case Drop:
		return "drop()"
	case NoOp:
		return "no_op()"
	case RegisterRead:
		return fmt.Sprintf("register_read(%s, %s, %s)", p.dstName(op.DstName, int(op.Dst)), op.Reg, p.printOperand(op.Index))
	case RegisterWrite:
		return fmt.Sprintf("register_write(%s, %s, %s)", op.Reg, p.printOperand(op.Index), p.printOperand(op.Value))
	case RegisterIncrement:
		return fmt.Sprintf("register_increment(%s, %s, %s)", op.Reg, p.printOperand(op.Index), p.printOperand(op.By))
	case ModifyFieldWithHash:
		return fmt.Sprintf("modify_field_with_hash_based_offset(%s, %d, %s, %d)", p.dstName(op.DstName, int(op.Dst)), op.Base, op.Hash, op.Size)
	case Recirculate:
		return "recirculate()"
	default:
		return fmt.Sprintf("/* unknown primitive %T */", prim)
	}
}

func (p *Program) dstName(name string, id int) string {
	if name != "" {
		return name
	}
	return fmt.Sprintf("field#%d", id)
}

var cmpStrings = map[CmpOp]string{
	CmpEQ: "==", CmpNE: "!=", CmpLT: "<", CmpLE: "<=", CmpGT: ">", CmpGE: ">=",
}

func (p *Program) printFlow(b *strings.Builder, stmts []ControlStmt, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch st := s.(type) {
		case Apply:
			fmt.Fprintf(b, "%sapply(%s);\n", indent, st.Table)
		case If:
			fmt.Fprintf(b, "%sif (%s %s %s) {\n", indent,
				p.printOperand(st.Cond.Left), cmpStrings[st.Cond.Op], p.printOperand(st.Cond.Right))
			p.printFlow(b, st.Then, depth+1)
			if len(st.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", indent)
				p.printFlow(b, st.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", indent)
		}
	}
}

// LineCount reports the number of non-blank lines of the printed
// program, used for the Table-1 "P4 LoC" metric.
func (p *Program) LineCount() int {
	n := 0
	for _, line := range strings.Split(p.Print(), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}
