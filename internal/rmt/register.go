package rmt

import (
	"fmt"

	"repro/internal/p4"
	"repro/internal/packet"
)

// registerInstance is the runtime storage of one stateful register
// array. Values are always stored masked to the declared width, matching
// hardware behaviour where a W-bit register silently wraps.
type registerInstance struct {
	def  *p4.Register
	vals []uint64
	mask uint64
}

func newRegisterInstance(def *p4.Register) *registerInstance {
	return &registerInstance{
		def:  def,
		vals: make([]uint64, def.Instances),
		mask: packet.Mask(def.Width),
	}
}

// read is the data-plane path: out-of-range indices wrap (hardware
// truncates the index to the address width rather than faulting).
func (r *registerInstance) read(idx uint64) uint64 {
	return r.vals[idx%uint64(len(r.vals))]
}

// write is the data-plane path with wrapping index semantics.
func (r *registerInstance) write(idx uint64, v uint64) {
	r.vals[idx%uint64(len(r.vals))] = v & r.mask
}

// readChecked is the control-plane path: drivers reject out-of-range
// indices with an error rather than wrapping.
func (r *registerInstance) readChecked(idx uint64) (uint64, error) {
	if idx >= uint64(len(r.vals)) {
		return 0, fmt.Errorf("rmt: register %s index %d out of range [0,%d): %w", r.def.Name, idx, len(r.vals), ErrRegRange)
	}
	return r.vals[idx], nil
}

func (r *registerInstance) writeChecked(idx uint64, v uint64) error {
	if idx >= uint64(len(r.vals)) {
		return fmt.Errorf("rmt: register %s index %d out of range [0,%d): %w", r.def.Name, idx, len(r.vals), ErrRegRange)
	}
	r.vals[idx] = v & r.mask
	return nil
}

func (r *registerInstance) readRange(lo, hi uint64) ([]uint64, error) {
	return r.readRangeInto(lo, hi, nil)
}

// readRangeInto appends cells [lo, hi) to dst and returns the extended
// slice; with sufficient capacity no allocation occurs. Callers pass
// buf[:0] to reuse a per-iteration poll buffer.
func (r *registerInstance) readRangeInto(lo, hi uint64, dst []uint64) ([]uint64, error) {
	if lo > hi || hi > uint64(len(r.vals)) {
		return nil, fmt.Errorf("rmt: register %s range [%d,%d) out of bounds [0,%d): %w", r.def.Name, lo, hi, len(r.vals), ErrRegRange)
	}
	return append(dst, r.vals[lo:hi]...), nil
}
