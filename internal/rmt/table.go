package rmt

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/p4"
)

// EntryHandle identifies an installed table entry for later modify or
// delete operations, mirroring the entry handles of switch driver APIs.
type EntryHandle uint64

// KeySpec is the match specification of one key column of an entry. The
// interpretation depends on the column's MatchKind:
//
//   - exact:   packet value == Value
//   - ternary: packet value & Mask == Value & Mask
//   - lpm:     ternary with a contiguous prefix Mask (see LPMKey)
//   - range:   Lo <= packet value <= Hi
type KeySpec struct {
	Value uint64
	Mask  uint64
	Lo    uint64
	Hi    uint64
}

// ExactKey returns a KeySpec matching exactly v.
func ExactKey(v uint64) KeySpec { return KeySpec{Value: v, Mask: ^uint64(0)} }

// TernaryKey returns a KeySpec matching v under mask. A zero mask is a
// wildcard.
func TernaryKey(v, mask uint64) KeySpec { return KeySpec{Value: v, Mask: mask} }

// WildcardKey matches any value.
func WildcardKey() KeySpec { return KeySpec{} }

// LPMKey returns a KeySpec matching the top prefixLen bits of v within a
// width-bit field.
func LPMKey(v uint64, prefixLen, width int) KeySpec {
	if prefixLen <= 0 {
		return KeySpec{}
	}
	if prefixLen > width {
		prefixLen = width
	}
	mask := (^uint64(0) << uint(width-prefixLen)) & ((1 << uint(width)) - 1)
	if width == 64 {
		mask = ^uint64(0) << uint(64-prefixLen)
	}
	return KeySpec{Value: v & mask, Mask: mask}
}

// RangeKey returns a KeySpec matching values in [lo, hi].
func RangeKey(lo, hi uint64) KeySpec { return KeySpec{Lo: lo, Hi: hi} }

// Entry is an installed table entry.
type Entry struct {
	Handle   EntryHandle
	Keys     []KeySpec
	Priority int
	Action   string
	Data     []uint64

	// act and code cache the resolved and compiled action so the
	// per-packet path skips the program's Actions map and interprets no
	// AST. Both are filled on add/modify.
	act  *p4.Action
	code *caction
}

// exactKeyWidth is the number of key columns an exactKey holds inline.
// Wider keys fall back to a heap-encoded string (none of the paper's
// programs get near this: the widest Mantis table has 3 columns).
const exactKeyWidth = 4

// exactKey is a comparable fixed-size map key for all-exact tables.
// Building one from a lookup's column values is allocation-free for up
// to exactKeyWidth columns, unlike the old []byte-to-string encoding
// which heap-allocated on every lookup.
type exactKey struct {
	vals [exactKeyWidth]uint64
	n    uint8
	// wide is the fallback encoding for tables with more than
	// exactKeyWidth key columns; empty otherwise.
	wide string
}

func makeExactKey(vals []uint64) exactKey {
	var k exactKey
	if len(vals) <= exactKeyWidth {
		k.n = uint8(len(vals))
		copy(k.vals[:], vals)
		return k
	}
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[i*8:], v)
	}
	k.wide = string(buf)
	return k
}

// tableInstance is the runtime state of one match-action table.
type tableInstance struct {
	def      *p4.Table
	prog     *p4.Program
	allExact bool

	byHandle map[EntryHandle]*Entry
	// exactIdx indexes entries by encoded key for all-exact tables.
	exactIdx map[exactKey]*Entry
	// ordered holds entries in match-priority order for TCAM tables.
	ordered []*Entry

	// bucketCol, when >= 0, is an all-exact key column of a TCAM table.
	// Entries are then partitioned into buckets by that column's value:
	// a lookup only ever scans the one bucket whose key equals the
	// packet's column value, turning the O(entries) TCAM scan into
	// O(bucket). Each bucket keeps the same (priority desc, handle asc)
	// order as ordered, so match priority is preserved.
	bucketCol int
	buckets   map[uint64][]*Entry

	defaultAction *p4.ActionCall
	// defaultAct/defaultCode/defaultData cache the resolved default
	// action for the per-packet miss path.
	defaultAct  *p4.Action
	defaultCode *caction
	defaultData []uint64
	// ownedCall/ownedData back setDefault with table-owned storage: the
	// installed default must not alias the caller's ActionCall (agents
	// reuse one as scratch across iterations) nor the program
	// definition's declared data (aliased at init and shared between
	// switch instances).
	ownedCall p4.ActionCall
	ownedData []uint64

	// codeOf maps action names to their compiled bodies; set by the
	// owning Switch once all actions are compiled (nil when a
	// tableInstance is built standalone in tests).
	codeOf map[string]*caction

	nextHandle EntryHandle

	// keyScratch is the reusable lookup-key buffer for applyTable; the
	// simulator is single-threaded, so one buffer per table suffices.
	keyScratch []uint64

	// Hits and Misses count lookups for observability.
	Hits, Misses uint64
}

func newTableInstance(prog *p4.Program, def *p4.Table) *tableInstance {
	ti := &tableInstance{
		def:        def,
		prog:       prog,
		allExact:   !def.HasTernary(),
		byHandle:   make(map[EntryHandle]*Entry),
		bucketCol:  -1,
		keyScratch: make([]uint64, len(def.Keys)),
	}
	if ti.allExact {
		ti.exactIdx = make(map[exactKey]*Entry)
	} else {
		for i, k := range def.Keys {
			if k.Kind == p4.MatchExact {
				ti.bucketCol = i
				ti.buckets = make(map[uint64][]*Entry)
				break
			}
		}
	}
	if def.DefaultAction != nil {
		da := *def.DefaultAction
		ti.defaultAction = &da
		ti.defaultAct = prog.Actions[da.Action]
		ti.defaultData = da.Data
	}
	return ti
}

func (ti *tableInstance) encodeExact(keys []KeySpec) exactKey {
	var vals [exactKeyWidth]uint64
	if len(keys) <= exactKeyWidth {
		for i, k := range keys {
			vals[i] = k.Value
		}
		return exactKey{vals: vals, n: uint8(len(keys))}
	}
	wide := make([]uint64, len(keys))
	for i, k := range keys {
		wide[i] = k.Value
	}
	return makeExactKey(wide)
}

func (ti *tableInstance) validate(e *Entry) error {
	if len(e.Keys) != len(ti.def.Keys) {
		return fmt.Errorf("table %s: entry has %d key columns, want %d: %w", ti.def.Name, len(e.Keys), len(ti.def.Keys), ErrBadEntry)
	}
	allowed := false
	for _, an := range ti.def.ActionNames {
		if an == e.Action {
			allowed = true
			break
		}
	}
	if !allowed {
		return fmt.Errorf("table %s: action %q not allowed: %w", ti.def.Name, e.Action, ErrUnknownAction)
	}
	a := ti.prog.Actions[e.Action]
	if len(e.Data) != len(a.Params) {
		return fmt.Errorf("table %s: action %s takes %d args, got %d: %w", ti.def.Name, e.Action, len(a.Params), len(e.Data), ErrBadEntry)
	}
	return nil
}

// add installs an entry and returns its handle. For all-exact tables a
// duplicate key is rejected the way hardware drivers reject it.
func (ti *tableInstance) add(e Entry) (EntryHandle, error) {
	if err := ti.validate(&e); err != nil {
		return 0, err
	}
	if ti.def.Size > 0 && len(ti.byHandle) >= ti.def.Size {
		return 0, fmt.Errorf("table %s: full (%d entries): %w", ti.def.Name, ti.def.Size, ErrTableFull)
	}
	e.act = ti.prog.Actions[e.Action]
	e.code = ti.codeOf[e.Action]
	// Own the Keys and Data storage: modify reuses Data capacity in
	// place, and callers staging entries in reusable buffers (the driver
	// submission ring) recycle both slices after the call returns —
	// neither must ever scribble over an installed entry.
	e.Keys = append(make([]KeySpec, 0, len(e.Keys)), e.Keys...)
	e.Data = append(make([]uint64, 0, len(e.Data)), e.Data...)
	if ti.allExact {
		key := ti.encodeExact(e.Keys)
		if _, dup := ti.exactIdx[key]; dup {
			return 0, fmt.Errorf("table %s: %w", ti.def.Name, ErrDuplicateEntry)
		}
		ti.nextHandle++
		e.Handle = ti.nextHandle
		stored := e
		ti.byHandle[e.Handle] = &stored
		ti.exactIdx[key] = &stored
		return e.Handle, nil
	}
	ti.nextHandle++
	e.Handle = ti.nextHandle
	stored := e
	ti.byHandle[e.Handle] = &stored
	ti.ordered = append(ti.ordered, &stored)
	ti.sortEntries()
	if ti.buckets != nil {
		bk := stored.Keys[ti.bucketCol].Value
		ti.buckets[bk] = insertByPriority(ti.buckets[bk], &stored)
	}
	return e.Handle, nil
}

func entryLess(a, b *Entry) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Handle < b.Handle
}

// insertByPriority inserts e into a (priority desc, handle asc) sorted
// bucket, keeping the order lookup depends on.
func insertByPriority(bucket []*Entry, e *Entry) []*Entry {
	pos := sort.Search(len(bucket), func(i int) bool { return entryLess(e, bucket[i]) })
	bucket = append(bucket, nil)
	copy(bucket[pos+1:], bucket[pos:])
	bucket[pos] = e
	return bucket
}

func (ti *tableInstance) sortEntries() {
	sort.SliceStable(ti.ordered, func(i, j int) bool {
		return entryLess(ti.ordered[i], ti.ordered[j])
	})
}

// modify rebinds an entry's action and data without touching its keys,
// the common fast path of Mantis reactions. The entry's Data storage is
// reused when capacity allows, so steady-state reactions (same action,
// new arguments) do not allocate.
func (ti *tableInstance) modify(h EntryHandle, action string, data []uint64) error {
	e, ok := ti.byHandle[h]
	if !ok {
		return fmt.Errorf("table %s: no entry with handle %d: %w", ti.def.Name, h, ErrUnknownEntry)
	}
	probe := Entry{Keys: e.Keys, Action: action, Data: data}
	if err := ti.validate(&probe); err != nil {
		return err
	}
	e.Action = action
	e.act = ti.prog.Actions[action]
	e.code = ti.codeOf[action]
	e.Data = append(e.Data[:0], data...)
	return nil
}

func (ti *tableInstance) del(h EntryHandle) error {
	e, ok := ti.byHandle[h]
	if !ok {
		return fmt.Errorf("table %s: no entry with handle %d: %w", ti.def.Name, h, ErrUnknownEntry)
	}
	delete(ti.byHandle, h)
	if ti.allExact {
		delete(ti.exactIdx, ti.encodeExact(e.Keys))
		return nil
	}
	for i, x := range ti.ordered {
		if x.Handle == h {
			ti.ordered = append(ti.ordered[:i], ti.ordered[i+1:]...)
			break
		}
	}
	if ti.buckets != nil {
		bk := e.Keys[ti.bucketCol].Value
		bucket := ti.buckets[bk]
		for i, x := range bucket {
			if x.Handle == h {
				bucket = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(bucket) == 0 {
			delete(ti.buckets, bk)
		} else {
			ti.buckets[bk] = bucket
		}
	}
	return nil
}

func (ti *tableInstance) setDefault(call *p4.ActionCall) error {
	if call != nil {
		a, ok := ti.prog.Actions[call.Action]
		if !ok {
			return fmt.Errorf("table %s: unknown default action %q: %w", ti.def.Name, call.Action, ErrUnknownAction)
		}
		if len(call.Data) != len(a.Params) {
			return fmt.Errorf("table %s: default action %s takes %d args, got %d: %w",
				ti.def.Name, call.Action, len(a.Params), len(call.Data), ErrBadEntry)
		}
		ti.ownedData = append(ti.ownedData[:0], call.Data...)
		ti.ownedCall = p4.ActionCall{Action: call.Action, Data: ti.ownedData}
		ti.defaultAction = &ti.ownedCall
		ti.defaultAct = a
		ti.defaultCode = ti.codeOf[call.Action]
		ti.defaultData = ti.ownedData
		return nil
	}
	ti.defaultAction = nil
	ti.defaultAct = nil
	ti.defaultCode = nil
	ti.defaultData = nil
	return nil
}

func matchKey(kind p4.MatchKind, spec KeySpec, v uint64) bool {
	switch kind {
	case p4.MatchExact:
		return v == spec.Value
	case p4.MatchTernary, p4.MatchLPM:
		return v&spec.Mask == spec.Value&spec.Mask
	case p4.MatchRange:
		return v >= spec.Lo && v <= spec.Hi
	}
	return false
}

// matches reports whether entry e matches the key column values.
func (ti *tableInstance) matches(e *Entry, vals []uint64) bool {
	for i := range ti.def.Keys {
		if !matchKey(ti.def.Keys[i].Kind, e.Keys[i], vals[i]) {
			return false
		}
	}
	return true
}

// lookup finds the matching entry for the given key column values, or
// nil on a miss (caller then applies the default action).
func (ti *tableInstance) lookup(vals []uint64) *Entry {
	if ti.allExact {
		if e, ok := ti.exactIdx[makeExactKey(vals)]; ok {
			ti.Hits++
			return e
		}
		ti.Misses++
		return nil
	}
	scan := ti.ordered
	if ti.buckets != nil {
		// Only the bucket whose exact column equals the packet value can
		// contain a match; other buckets' entries fail that column.
		scan = ti.buckets[vals[ti.bucketCol]]
	}
	for _, e := range scan {
		if ti.matches(e, vals) {
			ti.Hits++
			return e
		}
	}
	ti.Misses++
	return nil
}

// entries returns a snapshot of all installed entries sorted by handle.
// Data slices are deep-copied: modify reuses an entry's Data storage in
// place, so snapshots must not alias it.
func (ti *tableInstance) entries() []Entry {
	out := make([]Entry, 0, len(ti.byHandle))
	for _, e := range ti.byHandle {
		c := *e
		c.Data = append([]uint64(nil), e.Data...)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Handle < out[j].Handle })
	return out
}
