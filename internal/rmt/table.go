package rmt

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/p4"
)

// EntryHandle identifies an installed table entry for later modify or
// delete operations, mirroring the entry handles of switch driver APIs.
type EntryHandle uint64

// KeySpec is the match specification of one key column of an entry. The
// interpretation depends on the column's MatchKind:
//
//   - exact:   packet value == Value
//   - ternary: packet value & Mask == Value & Mask
//   - lpm:     ternary with a contiguous prefix Mask (see LPMKey)
//   - range:   Lo <= packet value <= Hi
type KeySpec struct {
	Value uint64
	Mask  uint64
	Lo    uint64
	Hi    uint64
}

// ExactKey returns a KeySpec matching exactly v.
func ExactKey(v uint64) KeySpec { return KeySpec{Value: v, Mask: ^uint64(0)} }

// TernaryKey returns a KeySpec matching v under mask. A zero mask is a
// wildcard.
func TernaryKey(v, mask uint64) KeySpec { return KeySpec{Value: v, Mask: mask} }

// WildcardKey matches any value.
func WildcardKey() KeySpec { return KeySpec{} }

// LPMKey returns a KeySpec matching the top prefixLen bits of v within a
// width-bit field.
func LPMKey(v uint64, prefixLen, width int) KeySpec {
	if prefixLen <= 0 {
		return KeySpec{}
	}
	if prefixLen > width {
		prefixLen = width
	}
	mask := (^uint64(0) << uint(width-prefixLen)) & ((1 << uint(width)) - 1)
	if width == 64 {
		mask = ^uint64(0) << uint(64-prefixLen)
	}
	return KeySpec{Value: v & mask, Mask: mask}
}

// RangeKey returns a KeySpec matching values in [lo, hi].
func RangeKey(lo, hi uint64) KeySpec { return KeySpec{Lo: lo, Hi: hi} }

// Entry is an installed table entry.
type Entry struct {
	Handle   EntryHandle
	Keys     []KeySpec
	Priority int
	Action   string
	Data     []uint64
}

// tableInstance is the runtime state of one match-action table.
type tableInstance struct {
	def      *p4.Table
	prog     *p4.Program
	allExact bool

	byHandle map[EntryHandle]*Entry
	// exactIdx indexes entries by encoded key for all-exact tables.
	exactIdx map[string]*Entry
	// ordered holds entries in match-priority order for TCAM tables.
	ordered []*Entry

	defaultAction *p4.ActionCall
	nextHandle    EntryHandle

	// Hits and Misses count lookups for observability.
	Hits, Misses uint64
}

func newTableInstance(prog *p4.Program, def *p4.Table) *tableInstance {
	ti := &tableInstance{
		def:      def,
		prog:     prog,
		allExact: !def.HasTernary(),
		byHandle: make(map[EntryHandle]*Entry),
	}
	if ti.allExact {
		ti.exactIdx = make(map[string]*Entry)
	}
	if def.DefaultAction != nil {
		da := *def.DefaultAction
		ti.defaultAction = &da
	}
	return ti
}

func (ti *tableInstance) encodeExact(keys []KeySpec) string {
	buf := make([]byte, 8*len(keys))
	for i, k := range keys {
		binary.BigEndian.PutUint64(buf[i*8:], k.Value)
	}
	return string(buf)
}

func (ti *tableInstance) encodeLookup(vals []uint64) string {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[i*8:], v)
	}
	return string(buf)
}

func (ti *tableInstance) validate(e *Entry) error {
	if len(e.Keys) != len(ti.def.Keys) {
		return fmt.Errorf("table %s: entry has %d key columns, want %d: %w", ti.def.Name, len(e.Keys), len(ti.def.Keys), ErrBadEntry)
	}
	allowed := false
	for _, an := range ti.def.ActionNames {
		if an == e.Action {
			allowed = true
			break
		}
	}
	if !allowed {
		return fmt.Errorf("table %s: action %q not allowed: %w", ti.def.Name, e.Action, ErrUnknownAction)
	}
	a := ti.prog.Actions[e.Action]
	if len(e.Data) != len(a.Params) {
		return fmt.Errorf("table %s: action %s takes %d args, got %d: %w", ti.def.Name, e.Action, len(a.Params), len(e.Data), ErrBadEntry)
	}
	return nil
}

// add installs an entry and returns its handle. For all-exact tables a
// duplicate key is rejected the way hardware drivers reject it.
func (ti *tableInstance) add(e Entry) (EntryHandle, error) {
	if err := ti.validate(&e); err != nil {
		return 0, err
	}
	if ti.def.Size > 0 && len(ti.byHandle) >= ti.def.Size {
		return 0, fmt.Errorf("table %s: full (%d entries): %w", ti.def.Name, ti.def.Size, ErrTableFull)
	}
	if ti.allExact {
		key := ti.encodeExact(e.Keys)
		if _, dup := ti.exactIdx[key]; dup {
			return 0, fmt.Errorf("table %s: %w", ti.def.Name, ErrDuplicateEntry)
		}
		ti.nextHandle++
		e.Handle = ti.nextHandle
		stored := e
		ti.byHandle[e.Handle] = &stored
		ti.exactIdx[key] = &stored
		return e.Handle, nil
	}
	ti.nextHandle++
	e.Handle = ti.nextHandle
	stored := e
	ti.byHandle[e.Handle] = &stored
	ti.ordered = append(ti.ordered, &stored)
	ti.sortEntries()
	return e.Handle, nil
}

func (ti *tableInstance) sortEntries() {
	sort.SliceStable(ti.ordered, func(i, j int) bool {
		if ti.ordered[i].Priority != ti.ordered[j].Priority {
			return ti.ordered[i].Priority > ti.ordered[j].Priority
		}
		return ti.ordered[i].Handle < ti.ordered[j].Handle
	})
}

// modify rebinds an entry's action and data without touching its keys,
// the common fast path of Mantis reactions.
func (ti *tableInstance) modify(h EntryHandle, action string, data []uint64) error {
	e, ok := ti.byHandle[h]
	if !ok {
		return fmt.Errorf("table %s: no entry with handle %d: %w", ti.def.Name, h, ErrUnknownEntry)
	}
	probe := Entry{Keys: e.Keys, Action: action, Data: data}
	if err := ti.validate(&probe); err != nil {
		return err
	}
	e.Action = action
	e.Data = append([]uint64(nil), data...)
	return nil
}

func (ti *tableInstance) del(h EntryHandle) error {
	e, ok := ti.byHandle[h]
	if !ok {
		return fmt.Errorf("table %s: no entry with handle %d: %w", ti.def.Name, h, ErrUnknownEntry)
	}
	delete(ti.byHandle, h)
	if ti.allExact {
		delete(ti.exactIdx, ti.encodeExact(e.Keys))
		return nil
	}
	for i, x := range ti.ordered {
		if x.Handle == h {
			ti.ordered = append(ti.ordered[:i], ti.ordered[i+1:]...)
			break
		}
	}
	return nil
}

func (ti *tableInstance) setDefault(call *p4.ActionCall) error {
	if call != nil {
		a, ok := ti.prog.Actions[call.Action]
		if !ok {
			return fmt.Errorf("table %s: unknown default action %q: %w", ti.def.Name, call.Action, ErrUnknownAction)
		}
		if len(call.Data) != len(a.Params) {
			return fmt.Errorf("table %s: default action %s takes %d args, got %d: %w",
				ti.def.Name, call.Action, len(a.Params), len(call.Data), ErrBadEntry)
		}
	}
	ti.defaultAction = call
	return nil
}

func matchKey(kind p4.MatchKind, spec KeySpec, v uint64) bool {
	switch kind {
	case p4.MatchExact:
		return v == spec.Value
	case p4.MatchTernary, p4.MatchLPM:
		return v&spec.Mask == spec.Value&spec.Mask
	case p4.MatchRange:
		return v >= spec.Lo && v <= spec.Hi
	}
	return false
}

// lookup finds the matching entry for the given key column values, or
// nil on a miss (caller then applies the default action).
func (ti *tableInstance) lookup(vals []uint64) *Entry {
	if ti.allExact {
		if e, ok := ti.exactIdx[ti.encodeLookup(vals)]; ok {
			ti.Hits++
			return e
		}
		ti.Misses++
		return nil
	}
	for _, e := range ti.ordered {
		matched := true
		for i, k := range ti.def.Keys {
			if !matchKey(k.Kind, e.Keys[i], vals[i]) {
				matched = false
				break
			}
		}
		if matched {
			ti.Hits++
			return e
		}
	}
	ti.Misses++
	return nil
}

// entries returns a snapshot of all installed entries sorted by handle.
func (ti *tableInstance) entries() []Entry {
	out := make([]Entry, 0, len(ti.byHandle))
	for _, e := range ti.byHandle {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Handle < out[j].Handle })
	return out
}
