package rmt

import (
	"repro/internal/p4"
	"repro/internal/packet"
)

// This file compiles a program's control flow into a flat instruction
// slice at switch construction time, in the spirit of Packet
// Transactions: the per-packet path interprets a specialized,
// pre-resolved pipeline instead of walking the p4 AST. Table names are
// resolved to *tableInstance pointers and If/Else nesting is flattened
// into jumps, so executing a pipeline pass does no map lookups, no
// interface type switches over ControlStmt, and no recursion.

type opcode uint8

const (
	// opApply applies instr.table to the packet.
	opApply opcode = iota
	// opJump continues execution at instr.target.
	opJump
	// opJumpIfNot evaluates instr.cond and jumps to instr.target when it
	// is false (the else/end edge of an If).
	opJumpIfNot
)

// instr is one step of a compiled control flow.
type instr struct {
	op     opcode
	table  *tableInstance
	cond   p4.CondExpr
	target int
}

// compileControl flattens stmts into instructions appended to prog.
// New validates the program first, so every applied table resolves.
func (sw *Switch) compileControl(prog []instr, stmts []p4.ControlStmt) []instr {
	for _, s := range stmts {
		switch st := s.(type) {
		case p4.Apply:
			prog = append(prog, instr{op: opApply, table: sw.tables[st.Table]})
		case p4.If:
			branch := len(prog)
			prog = append(prog, instr{op: opJumpIfNot, cond: st.Cond})
			prog = sw.compileControl(prog, st.Then)
			if len(st.Else) > 0 {
				skip := len(prog)
				prog = append(prog, instr{op: opJump})
				prog[branch].target = len(prog)
				prog = sw.compileControl(prog, st.Else)
				prog[skip].target = len(prog)
			} else {
				prog[branch].target = len(prog)
			}
		}
	}
	return prog
}

// runCompiled executes a compiled control flow for one packet. A drop
// primitive ends the pass after its containing action completes, same
// as the interpreted semantics.
func (sw *Switch) runCompiled(env *execEnv, prog []instr) {
	pc := 0
	for pc < len(prog) {
		in := &prog[pc]
		switch in.op {
		case opApply:
			sw.applyTable(env, in.table)
			if env.dropped {
				return
			}
		case opJump:
			pc = in.target
			continue
		case opJumpIfNot:
			if !evalCond(env, in.cond) {
				pc = in.target
				continue
			}
		}
		pc++
	}
}

// applyTable looks the packet up in ti and executes the matched (or
// default) action. The key buffer, resolved action, and action data are
// all preallocated, keeping this allocation-free.
func (sw *Switch) applyTable(env *execEnv, ti *tableInstance) {
	vals := ti.keyScratch
	for i := range ti.def.Keys {
		k := &ti.def.Keys[i]
		v := env.pkt.Get(k.Field)
		if k.StaticMask != 0 {
			v &= k.StaticMask
		}
		vals[i] = v
	}
	var act *p4.Action
	var code *caction
	var data []uint64
	if e := ti.lookup(vals); e != nil {
		act, code, data = e.act, e.code, e.Data
	} else {
		act, code, data = ti.defaultAct, ti.defaultCode, ti.defaultData
	}
	env.params = data
	if code != nil {
		sw.runAction(env, code)
	} else if act != nil {
		// Fallback for tables wired up without compiled actions (only
		// reachable from unit tests driving tableInstance directly).
		for _, prim := range act.Body {
			prim.Exec(env)
		}
	}
	env.params = nil
}

// ---- Compiled action bodies ----
//
// Action bodies are likewise specialized at New(): register and hash
// names are resolved to their runtime instances and each primitive
// becomes one flat cprim, so executing an action does no map lookups
// and no interface dispatch for the standard primitive set. Primitive
// types the compiler does not know fall back to Exec through the
// p4.Primitive interface, preserving extensibility.

type cprimKind uint8

const (
	cpModify cprimKind = iota
	cpALU
	cpDrop
	cpRegRead
	cpRegWrite
	cpRegInc
	cpHash
	cpRecirc
	cpGeneric
)

// cprim is one compiled primitive operation.
type cprim struct {
	kind    cprimKind
	aluOp   p4.ALUOp
	dst     packet.FieldID
	a, b    p4.Operand
	reg     *registerInstance
	hashIdx int
	base    uint64
	size    uint64
	generic p4.Primitive
}

// caction is a compiled action body.
type caction struct {
	prims []cprim
}

// operand evaluates o against the current packet and action data.
func (env *execEnv) operand(o *p4.Operand) uint64 {
	switch o.Kind {
	case p4.OpField:
		return env.pkt.Get(o.Field)
	case p4.OpConst:
		return o.Const
	default:
		return env.params[o.Param]
	}
}

// compileAction lowers one action body. NoOps are dropped outright.
func (sw *Switch) compileAction(a *p4.Action) *caction {
	ca := &caction{}
	for _, prim := range a.Body {
		switch pr := prim.(type) {
		case p4.ModifyField:
			ca.prims = append(ca.prims, cprim{kind: cpModify, dst: pr.Dst, a: pr.Src})
		case p4.ALU:
			ca.prims = append(ca.prims, cprim{kind: cpALU, aluOp: pr.Op, dst: pr.Dst, a: pr.A, b: pr.B})
		case p4.Drop:
			ca.prims = append(ca.prims, cprim{kind: cpDrop})
		case p4.NoOp:
		case p4.RegisterRead:
			ca.prims = append(ca.prims, cprim{kind: cpRegRead, dst: pr.Dst, reg: sw.registers[pr.Reg], a: pr.Index})
		case p4.RegisterWrite:
			ca.prims = append(ca.prims, cprim{kind: cpRegWrite, reg: sw.registers[pr.Reg], a: pr.Index, b: pr.Value})
		case p4.RegisterIncrement:
			ca.prims = append(ca.prims, cprim{kind: cpRegInc, reg: sw.registers[pr.Reg], a: pr.Index, b: pr.By})
		case p4.ModifyFieldWithHash:
			ca.prims = append(ca.prims, cprim{kind: cpHash, dst: pr.Dst, hashIdx: sw.hashIndex[pr.Hash], base: pr.Base, size: pr.Size})
		case p4.Recirculate:
			ca.prims = append(ca.prims, cprim{kind: cpRecirc})
		default:
			ca.prims = append(ca.prims, cprim{kind: cpGeneric, generic: prim})
		}
	}
	return ca
}

// runAction executes a compiled action body for one packet.
func (sw *Switch) runAction(env *execEnv, ca *caction) {
	pkt := env.pkt
	for i := range ca.prims {
		pr := &ca.prims[i]
		switch pr.kind {
		case cpModify:
			pkt.Set(pr.dst, env.operand(&pr.a))
		case cpALU:
			pkt.Set(pr.dst, pr.aluOp.Apply(env.operand(&pr.a), env.operand(&pr.b)))
		case cpDrop:
			env.dropped = true
		case cpRegRead:
			pkt.Set(pr.dst, pr.reg.read(env.operand(&pr.a)))
		case cpRegWrite:
			pr.reg.write(env.operand(&pr.a), env.operand(&pr.b))
		case cpRegInc:
			idx := env.operand(&pr.a)
			pr.reg.write(idx, pr.reg.read(idx)+env.operand(&pr.b))
		case cpHash:
			h := sw.hashValue(pkt, pr.hashIdx)
			if pr.size > 0 {
				h = pr.base + h%pr.size
			}
			pkt.Set(pr.dst, h)
		case cpRecirc:
			env.recirculate = true
		case cpGeneric:
			pr.generic.Exec(env)
		}
	}
}
