package rmt

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/sim"
)

// ---- Zero-allocation guarantees of the per-packet fast path ----

// TestExactLookupZeroAlloc pins the tentpole claim: an exact-match
// lookup builds its comparable key on the stack and allocates nothing.
func TestExactLookupZeroAlloc(t *testing.T) {
	_, sw := newTestSwitch(t)
	for i := 0; i < 8; i++ {
		if _, err := sw.AddEntry("forward", Entry{
			Keys: []KeySpec{ExactKey(uint64(i))}, Action: "set_egress", Data: []uint64{1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ti := sw.tables["forward"]
	vals := []uint64{3}
	if ti.lookup(vals) == nil {
		t.Fatal("expected hit")
	}
	n := testing.AllocsPerRun(1000, func() {
		vals[0] = 5
		ti.lookup(vals)
	})
	if n != 0 {
		t.Fatalf("exact lookup allocates %v per op, want 0", n)
	}
}

// TestTernaryLookupZeroAlloc: the bucketed TCAM path is allocation-free
// too.
func TestTernaryLookupZeroAlloc(t *testing.T) {
	ti := buildTCAMTable(t, 64, true)
	vals := []uint64{10, 0}
	if ti.lookup(vals) == nil {
		t.Fatal("expected hit")
	}
	n := testing.AllocsPerRun(1000, func() { ti.lookup(vals) })
	if n != 0 {
		t.Fatalf("ternary lookup allocates %v per op, want 0", n)
	}
}

// TestPipelineZeroAlloc drives full ingress-to-egress passes with a
// packet pool and requires the whole per-packet path — lookup, compiled
// actions, queueing, event scheduling — to be allocation-free in steady
// state.
func TestPipelineZeroAlloc(t *testing.T) {
	s := sim.New(1)
	sw, err := New(s, testProgram(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	pool := packet.NewPool(sw.Program().Schema)
	tmpl := mkPacket(sw, 1, 9, 100)
	send := func() {
		p := pool.Get()
		tmpl.CloneInto(p)
		sw.Inject(0, p)
		s.Run()
		pool.Put(p)
	}
	for i := 0; i < 100; i++ {
		send() // warm the event freelist and port buffers
	}
	if n := testing.AllocsPerRun(1000, send); n != 0 {
		t.Fatalf("pipeline pass allocates %v per packet, want 0", n)
	}
	if got := sw.Stats().TxPackets; got == 0 {
		t.Fatal("no packets transmitted")
	}
}

// TestModifyEntryZeroAlloc: rebinding action data — the Mantis reaction
// fast path — reuses the entry's Data storage.
func TestModifyEntryZeroAlloc(t *testing.T) {
	_, sw := newTestSwitch(t)
	h, err := sw.AddEntry("forward", Entry{
		Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := []uint64{3}
	n := testing.AllocsPerRun(1000, func() {
		data[0]++
		if err := sw.ModifyEntry("forward", h, "set_egress", data); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("modify allocates %v per op, want 0", n)
	}
}

// TestModifyDoesNotAliasCallerData: the in-place Data reuse must never
// scribble over slices the control plane still holds (the bug class the
// serializability suites caught when add shared the caller's slice).
func TestModifyDoesNotAliasCallerData(t *testing.T) {
	_, sw := newTestSwitch(t)
	orig := []uint64{2}
	h, err := sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: orig})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.ModifyEntry("forward", h, "set_egress", []uint64{7}); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 2 {
		t.Fatalf("modify mutated the caller's original Data slice: %v", orig)
	}
	es, _ := sw.Entries("forward")
	snap := es[0].Data
	if err := sw.ModifyEntry("forward", h, "set_egress", []uint64{9}); err != nil {
		t.Fatal(err)
	}
	if snap[0] != 7 {
		t.Fatalf("modify mutated an entries() snapshot: %v", snap)
	}
}

// ---- TCAM bucket index ----

// buildTCAMTable builds a two-column (exact proto, ternary addr) or
// pure-ternary TCAM table with n entries, one per proto value.
func buildTCAMTable(t testing.TB, n int, exactCol bool) *tableInstance {
	t.Helper()
	prog := p4.NewProgram("tcam")
	prog.DefineStandardMetadata()
	fp := prog.Schema.Define("h.proto", 16)
	fa := prog.Schema.Define("h.addr", 32)
	prog.AddAction(&p4.Action{Name: "a", Params: []p4.Param{{Name: "id", Width: 32}}, Body: []p4.Primitive{p4.NoOp{}}})
	kind := p4.MatchTernary
	if exactCol {
		kind = p4.MatchExact
	}
	prog.AddTable(&p4.Table{
		Name: "t",
		Keys: []p4.MatchKey{
			{FieldName: "h.proto", Field: fp, Width: 16, Kind: kind},
			{FieldName: "h.addr", Field: fa, Width: 32, Kind: p4.MatchTernary},
		},
		ActionNames: []string{"a"},
	})
	ti := newTableInstance(prog, prog.Tables["t"])
	for i := 0; i < n; i++ {
		key := KeySpec{Value: uint64(i), Mask: 0xFFFF}
		if exactCol {
			key = ExactKey(uint64(i))
		}
		if _, err := ti.add(Entry{
			Keys:     []KeySpec{key, TernaryKey(0, 0)},
			Priority: i % 7,
			Action:   "a",
			Data:     []uint64{uint64(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return ti
}

// TestBucketedLookupMatchesLinear: the bucketed index must return
// exactly what the linear scan returns for every probe, including
// priority ordering within a bucket and misses.
func TestBucketedLookupMatchesLinear(t *testing.T) {
	bucketed := buildTCAMTable(t, 64, true)
	if bucketed.buckets == nil {
		t.Fatal("table with exact column not bucketed")
	}
	linear := buildTCAMTable(t, 64, true)
	linear.buckets = nil // force the fallback scan over ordered
	for probe := uint64(0); probe < 80; probe++ {
		got := bucketed.lookup([]uint64{probe, 12345})
		want := linear.lookup([]uint64{probe, 12345})
		switch {
		case (got == nil) != (want == nil):
			t.Fatalf("probe %d: bucketed=%v linear=%v", probe, got, want)
		case got != nil && (got.Data[0] != want.Data[0] || got.Priority != want.Priority):
			t.Fatalf("probe %d: bucketed entry %d prio %d, linear entry %d prio %d",
				probe, got.Data[0], got.Priority, want.Data[0], want.Priority)
		}
	}
}

// TestBucketedPriorityWithinBucket: several entries sharing the exact
// column must still match by descending priority (handle breaks ties).
func TestBucketedPriorityWithinBucket(t *testing.T) {
	ti := buildTCAMTable(t, 0, true)
	// Three entries for proto 5 with different priorities and masks.
	low, _ := ti.add(Entry{Keys: []KeySpec{ExactKey(5), TernaryKey(0, 0)}, Priority: 1, Action: "a", Data: []uint64{100}})
	high, _ := ti.add(Entry{Keys: []KeySpec{ExactKey(5), TernaryKey(0xAA, 0xFF)}, Priority: 9, Action: "a", Data: []uint64{200}})
	if got := ti.lookup([]uint64{5, 0xAA}); got == nil || got.Data[0] != 200 {
		t.Fatalf("high-priority entry not preferred: %+v", got)
	}
	if got := ti.lookup([]uint64{5, 0xBB}); got == nil || got.Data[0] != 100 {
		t.Fatalf("fallback to low-priority wildcard failed: %+v", got)
	}
	if err := ti.del(high); err != nil {
		t.Fatal(err)
	}
	if got := ti.lookup([]uint64{5, 0xAA}); got == nil || got.Data[0] != 100 {
		t.Fatalf("after delete, remaining entry not found: %+v", got)
	}
	if err := ti.del(low); err != nil {
		t.Fatal(err)
	}
	if got := ti.lookup([]uint64{5, 0xAA}); got != nil {
		t.Fatalf("empty bucket still matches: %+v", got)
	}
	if len(ti.buckets) != 0 {
		t.Fatalf("empty buckets not pruned: %d left", len(ti.buckets))
	}
}

// TestPureTernaryFallsBackToLinear: without an exact column there is
// nothing to partition on, and the table keeps the full scan.
func TestPureTernaryFallsBackToLinear(t *testing.T) {
	ti := buildTCAMTable(t, 16, false)
	if ti.buckets != nil {
		t.Fatal("pure-ternary table should not be bucketed")
	}
	if got := ti.lookup([]uint64{3, 0}); got == nil || got.Data[0] != 3 {
		t.Fatalf("linear fallback lookup: %+v", got)
	}
}

// TestWideExactKeyFallback: exact tables wider than the inline key
// still index correctly through the string fallback.
func TestWideExactKeyFallback(t *testing.T) {
	prog := p4.NewProgram("wide")
	prog.DefineStandardMetadata()
	var keys []p4.MatchKey
	for i := 0; i < exactKeyWidth+2; i++ {
		f := prog.Schema.Define(fmt.Sprintf("h.k%d", i), 32)
		keys = append(keys, p4.MatchKey{FieldName: fmt.Sprintf("h.k%d", i), Field: f, Width: 32, Kind: p4.MatchExact})
	}
	prog.AddAction(&p4.Action{Name: "a", Body: []p4.Primitive{p4.NoOp{}}})
	prog.AddTable(&p4.Table{Name: "t", Keys: keys, ActionNames: []string{"a"}})
	ti := newTableInstance(prog, prog.Tables["t"])
	spec := make([]KeySpec, len(keys))
	vals := make([]uint64, len(keys))
	for i := range spec {
		spec[i] = ExactKey(uint64(i + 1))
		vals[i] = uint64(i + 1)
	}
	if _, err := ti.add(Entry{Keys: spec, Action: "a"}); err != nil {
		t.Fatal(err)
	}
	if ti.lookup(vals) == nil {
		t.Fatal("wide exact key missed")
	}
	vals[exactKeyWidth+1] = 999
	if ti.lookup(vals) != nil {
		t.Fatal("wide exact key false positive")
	}
	if _, err := ti.add(Entry{Keys: spec, Action: "a"}); err == nil {
		t.Fatal("wide duplicate accepted")
	}
}

// ---- TableStats observability ----

func TestTableStats(t *testing.T) {
	s, sw := newTestSwitch(t)
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	sw.AddEntry("acl", Entry{Keys: []KeySpec{TernaryKey(17, 0xFF)}, Priority: 1, Action: "do_drop"})
	sw.Inject(0, mkPacket(sw, 1, 9, 64)) // forward hit
	sw.Inject(0, mkPacket(sw, 2, 9, 64)) // forward miss
	s.Run()
	fw, err := sw.TableStats("forward")
	if err != nil {
		t.Fatal(err)
	}
	if fw.Index != "exact" || fw.Entries != 1 || fw.Hits != 1 || fw.Misses != 1 {
		t.Fatalf("forward stats = %+v", fw)
	}
	acl, err := sw.TableStats("acl")
	if err != nil {
		t.Fatal(err)
	}
	// acl's only key column is ternary: no exact column to bucket on.
	if acl.Index != "linear" || acl.Entries != 1 {
		t.Fatalf("acl stats = %+v", acl)
	}
	if acl.Hits+acl.Misses != 2 {
		t.Fatalf("acl lookups = %d hits %d misses, want 2 total", acl.Hits, acl.Misses)
	}
	if _, err := sw.TableStats("ghost"); err == nil {
		t.Fatal("unknown table accepted")
	}
	// recirc_tbl has an exact column and is not all-exact? It is
	// all-exact (single exact key), so it reports the exact index.
	rc, _ := sw.TableStats("recirc_tbl")
	if rc.Index != "exact" {
		t.Fatalf("recirc_tbl index = %q", rc.Index)
	}
}

func TestTableStatsBucketed(t *testing.T) {
	prog := p4.NewProgram("b")
	prog.DefineStandardMetadata()
	fp := prog.Schema.Define("h.proto", 16)
	fa := prog.Schema.Define("h.addr", 32)
	egr := prog.Schema.MustID(p4.FieldEgressSpec)
	prog.AddAction(&p4.Action{
		Name:   "fwd",
		Params: []p4.Param{{Name: "port", Width: 16}},
		Body:   []p4.Primitive{p4.ModifyField{Dst: egr, DstName: p4.FieldEgressSpec, Src: p4.ParamOp(0, "port")}},
	})
	prog.AddTable(&p4.Table{
		Name: "t",
		Keys: []p4.MatchKey{
			{FieldName: "h.proto", Field: fp, Width: 16, Kind: p4.MatchExact},
			{FieldName: "h.addr", Field: fa, Width: 32, Kind: p4.MatchTernary},
		},
		ActionNames: []string{"fwd"},
	})
	prog.Ingress = []p4.ControlStmt{p4.Apply{Table: "t"}}
	s := sim.New(1)
	sw, err := New(s, prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sw.AddEntry("t", Entry{Keys: []KeySpec{ExactKey(uint64(i)), TernaryKey(0, 0)}, Action: "fwd", Data: []uint64{1}})
	}
	pkt := prog.Schema.New()
	pkt.Size = 64
	pkt.SetName("h.proto", 2)
	sw.Inject(0, pkt)
	s.Run()
	st, err := sw.TableStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Index != "bucketed" || st.Buckets != 4 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// ---- Strict-priority egress queue (satellite coverage) ----

// queueSwitch builds a switch with a tiny slow queue so packets pile up.
func queueSwitch(t testing.TB, capacity int) (*sim.Simulator, *Switch) {
	t.Helper()
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.QueueCapacity = capacity
	cfg.PortBandwidth = 1e8 // 1500B takes 120µs: queue stays full
	sw, err := New(s, testProgram(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}}); err != nil {
		t.Fatal(err)
	}
	return s, sw
}

// TestEnqueueEvictsLowestPriorityTailVictim: on a full queue the victim
// is the rearmost packet with priority strictly below the arrival's,
// and it is marked dropped and counted.
func TestEnqueueEvictsLowestPriorityTailVictim(t *testing.T) {
	s, sw := queueSwitch(t, 3)
	var order []uint64
	sw.Tx = func(_ int, pkt *packet.Packet) { order = append(order, pkt.GetName("ipv4.srcAddr")) }
	victims := make([]*packet.Packet, 0, 4)
	// One packet drains immediately; three fill the queue: srcs 1,2,3
	// with priorities 0,2,0 — so the queue orders [2(prio2), 1, 3].
	prios := []int{0, 0, 2, 0}
	for i := 0; i < 4; i++ {
		p := mkPacket(sw, 1, uint64(i), 1500)
		p.Priority = prios[i]
		victims = append(victims, p)
		sw.Inject(0, p)
	}
	s.RunFor(50 * time.Microsecond)
	// A priority-1 arrival must evict src 3 (the tail priority-0
	// packet), not src 2 (priority 2) and not src 1 (earlier same-prio).
	hb := mkPacket(sw, 1, 99, 64)
	hb.Priority = 1
	sw.Inject(0, hb)
	s.Run()
	if !victims[3].Dropped {
		t.Fatal("tail priority-0 packet not evicted")
	}
	if victims[1].Dropped || victims[2].Dropped {
		t.Fatalf("wrong victim evicted: p1=%v p2=%v", victims[1].Dropped, victims[2].Dropped)
	}
	if sw.Stats().QueueDrops != 1 {
		t.Fatalf("QueueDrops = %d, want 1", sw.Stats().QueueDrops)
	}
	for _, src := range order {
		if src == 3 {
			t.Fatalf("evicted packet transmitted; order = %v", order)
		}
	}
}

// TestEnqueueDropsWhenNoLowerPriorityVictim: equal priority does not
// evict — the arrival itself is tail-dropped.
func TestEnqueueDropsWhenNoLowerPriorityVictim(t *testing.T) {
	s, sw := queueSwitch(t, 2)
	for i := 0; i < 3; i++ {
		p := mkPacket(sw, 1, uint64(i), 1500)
		p.Priority = 5
		sw.Inject(0, p)
	}
	s.RunFor(50 * time.Microsecond)
	late := mkPacket(sw, 1, 99, 64)
	late.Priority = 5
	sw.Inject(0, late)
	s.Run()
	if !late.Dropped {
		t.Fatal("equal-priority arrival should be the drop victim")
	}
	if sw.Stats().QueueDrops != 1 {
		t.Fatalf("QueueDrops = %d, want 1", sw.Stats().QueueDrops)
	}
}

// TestEnqueueFIFOWithinPriority: same-priority packets leave in arrival
// order even when a higher-priority packet jumps between them.
func TestEnqueueFIFOWithinPriority(t *testing.T) {
	s, sw := queueSwitch(t, 8)
	var order []uint64
	sw.Tx = func(_ int, pkt *packet.Packet) { order = append(order, pkt.GetName("ipv4.srcAddr")) }
	// srcs 0..4 at priority 0, then srcs 10,11 at priority 3.
	for i := 0; i < 5; i++ {
		sw.Inject(0, mkPacket(sw, 1, uint64(i), 1500))
	}
	for i := 10; i < 12; i++ {
		p := mkPacket(sw, 1, uint64(i), 1500)
		p.Priority = 3
		sw.Inject(0, p)
	}
	s.Run()
	// src 0 is already serializing when the rest arrive; the queue then
	// orders priority 3 first (10 before 11), then 1..4 in FIFO order.
	want := []uint64{0, 10, 11, 1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("tx order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tx order = %v, want %v", order, want)
		}
	}
}

// TestEnqueueOutOfRangeEgressPortDrops: an egress_spec outside the
// port range is dropped at the traffic manager and counted as an
// ingress drop.
func TestEnqueueOutOfRangeEgressPortDrops(t *testing.T) {
	s, sw := newTestSwitch(t)
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{500}})
	tx := false
	sw.Tx = func(int, *packet.Packet) { tx = true }
	pkt := mkPacket(sw, 1, 9, 64)
	sw.Inject(0, pkt)
	s.Run()
	if tx {
		t.Fatal("packet with out-of-range egress port transmitted")
	}
	if !pkt.Dropped {
		t.Fatal("packet not marked dropped")
	}
	if sw.Stats().IngressDrops != 1 {
		t.Fatalf("IngressDrops = %d, want 1", sw.Stats().IngressDrops)
	}
}

// TestQueueWindowWrap exercises the sliding-window compaction: many
// cycles of fill and drain must preserve FIFO order with no loss.
func TestQueueWindowWrap(t *testing.T) {
	s, sw := queueSwitch(t, 4)
	var got []uint64
	sw.Tx = func(_ int, pkt *packet.Packet) { got = append(got, pkt.GetName("ipv4.srcAddr")) }
	next := uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			sw.Inject(0, mkPacket(sw, 1, next, 1500))
			next++
		}
		s.Run() // drain fully between bursts
	}
	if len(got) != int(next) {
		t.Fatalf("transmitted %d of %d packets", len(got), next)
	}
	for i, src := range got {
		if src != uint64(i) {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
	if sw.Stats().QueueDrops != 0 {
		t.Fatalf("unexpected drops: %d", sw.Stats().QueueDrops)
	}
}
