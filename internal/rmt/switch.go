// Package rmt models a Reconfigurable Match Table (RMT) switch ASIC: the
// execution substrate the Mantis paper targets (a Tofino-based
// Wedge100BF-32X in the original evaluation).
//
// The model executes a p4.Program over packets on a shared virtual
// clock. It reproduces the properties the paper's mechanisms depend on:
//
//   - Packets traverse a pipeline with a fixed latency; packets that
//     entered before a configuration change complete under the old
//     configuration (the model processes each packet's pipeline pass
//     atomically, which is the per-packet consistency real ASICs give).
//   - Control-plane operations mutate exactly one table entry, default
//     action, or register cell at a time — single-entry atomicity, the
//     primitive Mantis builds its serializable three-phase protocol on.
//   - Stateful SRAM registers are readable/writable from the data plane
//     and pollable from the control plane.
//   - Egress ports have finite queues drained at link bandwidth, so
//     queue depth, loss, and congestion are observable — required by the
//     hash-polarization and RL use cases.
//
// Latency and contention of the control channel (PCIe) are modeled in
// internal/driver, which wraps the instantaneous mutators defined here.
package rmt

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Config sets the physical parameters of the modeled switch.
type Config struct {
	// NumPorts is the number of front-panel ports.
	NumPorts int
	// QueueCapacity is the per-port egress queue depth, in packets.
	QueueCapacity int
	// PipelineLatency is the time from ingress MAC to egress queue
	// admission (100s of ns on real hardware).
	PipelineLatency time.Duration
	// PortBandwidth is the drain rate of each port in bits per second.
	PortBandwidth float64
	// RecirculationLatency is the extra delay of one recirculation pass.
	RecirculationLatency time.Duration
	// MaxRecirculations bounds recirculation loops (safety net).
	MaxRecirculations int
	// IngressCapacityPPS bounds the packet rate the ingress pipeline can
	// process (0 = unlimited). Recirculated packets consume the same
	// capacity as fresh arrivals — the cost §2 quantifies ("recirculating
	// every packet twice drops usable throughput to 38%").
	IngressCapacityPPS float64
}

// DefaultConfig matches the paper's testbed scale: a 32x25Gbps switch.
func DefaultConfig() Config {
	return Config{
		NumPorts:             32,
		QueueCapacity:        256,
		PipelineLatency:      400 * time.Nanosecond,
		PortBandwidth:        25e9,
		RecirculationLatency: 400 * time.Nanosecond,
		MaxRecirculations:    4,
	}
}

// Stats aggregates switch-level counters.
type Stats struct {
	RxPackets     uint64
	TxPackets     uint64
	IngressDrops  uint64 // dropped by a data-plane drop() action
	QueueDrops    uint64 // tail drops at full egress queues
	PortDownDrops uint64
	Recirculated  uint64
}

// port models one egress port: a priority queue drained at link
// bandwidth. The queue is a sliding window [head, head+n) over a
// fixed-capacity buffer allocated at switch construction, so enqueue
// and drain never allocate; the window compacts to the front when it
// reaches the end of the buffer.
type port struct {
	buf     []*packet.Packet
	head, n int
	up      bool
	busy    bool
	txBytes uint64
	txPkts  uint64
	// bandwidth overrides Config.PortBandwidth when > 0.
	bandwidth float64
}

// Switch is a running RMT switch instance executing one program.
type Switch struct {
	sim  *sim.Simulator
	prog *p4.Program
	cfg  Config

	tables    map[string]*tableInstance
	registers map[string]*registerInstance

	// Hash calculations are resolved to slice indices at New() so the
	// data plane reads seeds and definitions without map lookups.
	hashIndex map[string]int
	hashDefs  []*p4.HashCalc
	hashSeeds []uint64

	// actionCode holds the compiled body of every program action.
	actionCode map[string]*caction

	// ingressProg/egressProg are the control flows compiled to flat
	// instruction slices (see compiled.go).
	ingressProg []instr
	egressProg  []instr

	ports []*port

	// env is the reusable per-packet execution environment. Pipeline
	// passes are atomic and the simulator is single-threaded, so one
	// environment per switch suffices; reusing it keeps the per-packet
	// path allocation-free.
	env execEnv

	// enqueueFn/txDoneFn/admitFn/ingressFn are the per-packet event
	// callbacks, bound once so scheduling them (via sim.ScheduleCall)
	// does not allocate a closure per packet.
	enqueueFn func(any)
	txDoneFn  func(any)
	admitFn   func(any)
	ingressFn func(any)

	// Tx is invoked when a packet leaves a port (after egress pipeline
	// and serialization). The netsim layer wires this to links.
	Tx func(portN int, pkt *packet.Packet)

	stats Stats

	// configWrites counts control-plane mutations, for diagnostics.
	configWrites uint64

	// ingressBusyUntil serializes pipeline admission when
	// IngressCapacityPPS is set.
	ingressBusyUntil sim.Time

	// cached standard-metadata field IDs
	fIngressPort, fEgressSpec, fPacketLen packet.FieldID
	fTimestamp, fEnqQdepth, fEgressPort   packet.FieldID
	fPriority                             packet.FieldID
}

// New instantiates a switch running prog. The program must validate.
func New(s *sim.Simulator, prog *p4.Program, cfg Config) (*Switch, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("rmt: invalid program: %w", err)
	}
	if cfg.NumPorts <= 0 {
		return nil, fmt.Errorf("rmt: NumPorts must be positive")
	}
	if cfg.QueueCapacity < 0 {
		cfg.QueueCapacity = 0
	}
	sw := &Switch{
		sim:       s,
		prog:      prog,
		cfg:       cfg,
		tables:    make(map[string]*tableInstance),
		registers: make(map[string]*registerInstance),
		hashIndex: make(map[string]int),
	}
	for name, def := range prog.Registers {
		sw.registers[name] = newRegisterInstance(def)
	}
	hashNames := make([]string, 0, len(prog.Hashes))
	for name := range prog.Hashes {
		hashNames = append(hashNames, name)
	}
	sort.Strings(hashNames)
	for _, name := range hashNames {
		sw.hashIndex[name] = len(sw.hashDefs)
		sw.hashDefs = append(sw.hashDefs, prog.Hashes[name])
		sw.hashSeeds = append(sw.hashSeeds, 0)
	}
	sw.actionCode = make(map[string]*caction, len(prog.Actions))
	for name, a := range prog.Actions {
		sw.actionCode[name] = sw.compileAction(a)
	}
	for name, def := range prog.Tables {
		ti := newTableInstance(prog, def)
		ti.codeOf = sw.actionCode
		if ti.defaultAction != nil {
			ti.defaultCode = sw.actionCode[ti.defaultAction.Action]
		}
		sw.tables[name] = ti
	}
	sw.ingressProg = sw.compileControl(nil, prog.Ingress)
	sw.egressProg = sw.compileControl(nil, prog.Egress)
	sw.ports = make([]*port, cfg.NumPorts)
	for i := range sw.ports {
		sw.ports[i] = &port{up: true, buf: make([]*packet.Packet, cfg.QueueCapacity)}
	}
	sw.env.sw = sw
	sw.enqueueFn = sw.enqueueArg
	sw.txDoneFn = sw.txDoneArg
	sw.admitFn = sw.admitArg
	sw.ingressFn = sw.runIngressArg
	mustID := func(name string) packet.FieldID { return prog.Schema.MustID(name) }
	sw.fIngressPort = mustID(p4.FieldIngressPort)
	sw.fEgressSpec = mustID(p4.FieldEgressSpec)
	sw.fPacketLen = mustID(p4.FieldPacketLen)
	sw.fTimestamp = mustID(p4.FieldTimestamp)
	sw.fEnqQdepth = mustID(p4.FieldEnqQdepth)
	sw.fEgressPort = mustID(p4.FieldEgressPort)
	sw.fPriority = mustID(p4.FieldPriority)
	return sw, nil
}

// Program returns the loaded program.
func (sw *Switch) Program() *p4.Program { return sw.prog }

// Config returns the switch configuration.
func (sw *Switch) Config() Config { return sw.cfg }

// Stats returns a copy of the aggregate counters.
func (sw *Switch) Stats() Stats { return sw.stats }

// Now returns the current virtual time (convenience for callers holding
// only the switch).
func (sw *Switch) Now() sim.Time { return sw.sim.Now() }

// SetPortUp raises or lowers a port. Packets destined to a down port are
// dropped at the traffic manager.
func (sw *Switch) SetPortUp(portN int, up bool) {
	sw.ports[portN].up = up
}

// SetPortBandwidth overrides one port's drain rate (bits per second),
// e.g. to model a 10 Gbps bottleneck on an otherwise 25 Gbps switch.
func (sw *Switch) SetPortBandwidth(portN int, bps float64) {
	sw.ports[portN].bandwidth = bps
}

// PortUp reports the port's administrative state.
func (sw *Switch) PortUp(portN int) bool { return sw.ports[portN].up }

// QueueDepth returns the instantaneous egress queue occupancy of a port,
// in packets.
func (sw *Switch) QueueDepth(portN int) int { return sw.ports[portN].n }

// PortTxBytes returns the cumulative bytes transmitted by a port.
func (sw *Switch) PortTxBytes(portN int) uint64 { return sw.ports[portN].txBytes }

// Inject delivers a packet to the switch on the given ingress port at
// the current virtual time. Processing of the ingress pipeline happens
// immediately (atomically with respect to other events); queueing and
// egress follow on the virtual clock.
func (sw *Switch) Inject(portN int, pkt *packet.Packet) {
	sw.stats.RxPackets++
	pkt.IngressPort = portN
	sw.admit(pkt)
}

// admit schedules one ingress-pipeline pass, honoring the pipeline's
// packet-rate capacity. Fresh arrivals and recirculations share the
// capacity; the admission buffer is small (pipelines have no deep
// ingress queues), so sustained overload drops — which is what divides
// usable throughput by ~(N+1) when every packet takes N+1 passes.
func (sw *Switch) admit(pkt *packet.Packet) {
	if sw.cfg.IngressCapacityPPS <= 0 {
		sw.runIngress(pkt)
		return
	}
	slot := time.Duration(float64(time.Second) / sw.cfg.IngressCapacityPPS)
	now := sw.sim.Now()
	start := now
	if sw.ingressBusyUntil > start {
		start = sw.ingressBusyUntil
	}
	if backlog := int(start.Sub(now) / slot); backlog >= 64 {
		pkt.Dropped = true
		sw.stats.IngressDrops++
		return
	}
	sw.ingressBusyUntil = start.Add(slot)
	sw.sim.AtCall(start, sw.ingressFn, pkt)
}

// admitArg/runIngressArg/enqueueArg/txDoneArg adapt the per-packet
// pipeline steps to sim.ScheduleCall's func(any) shape; they are bound
// to fields once at New() so scheduling never allocates a closure.
func (sw *Switch) admitArg(arg any)      { sw.admit(arg.(*packet.Packet)) }
func (sw *Switch) runIngressArg(arg any) { sw.runIngress(arg.(*packet.Packet)) }

func (sw *Switch) enqueueArg(arg any) {
	pkt := arg.(*packet.Packet)
	sw.enqueue(pkt.EgressPort, pkt)
}

func (sw *Switch) txDoneArg(arg any) {
	pkt := arg.(*packet.Packet)
	portN := pkt.EgressPort
	sw.finishEgress(portN, pkt)
	sw.drain(portN)
}

// resetEnv readies the shared execution environment for one pipeline
// pass over pkt.
func (sw *Switch) resetEnv(pkt *packet.Packet) *execEnv {
	env := &sw.env
	env.pkt = pkt
	env.params = nil
	env.dropped = false
	env.recirculate = false
	return env
}

func (sw *Switch) runIngress(pkt *packet.Packet) {
	pkt.Set(sw.fIngressPort, uint64(pkt.IngressPort))
	pkt.Set(sw.fPacketLen, uint64(pkt.Size))
	pkt.Set(sw.fTimestamp, uint64(sw.sim.Now()))
	pkt.Set(sw.fPriority, uint64(pkt.Priority))

	env := sw.resetEnv(pkt)
	sw.runCompiled(env, sw.ingressProg)

	if env.dropped {
		pkt.Dropped = true
		sw.stats.IngressDrops++
		return
	}
	pkt.EgressPort = int(pkt.Get(sw.fEgressSpec))
	if env.recirculate {
		pkt.Recirculations++
	}
	// Traffic-manager admission happens after the ingress pipeline delay.
	sw.sim.ScheduleCall(sw.cfg.PipelineLatency, sw.enqueueFn, pkt)
}

func (sw *Switch) enqueue(portN int, pkt *packet.Packet) {
	if portN < 0 || portN >= len(sw.ports) {
		pkt.Dropped = true
		sw.stats.IngressDrops++
		return
	}
	p := sw.ports[portN]
	if !p.up {
		pkt.Dropped = true
		sw.stats.PortDownDrops++
		return
	}
	if p.n >= len(p.buf) {
		// Strict-priority admission: a higher-priority arrival may evict
		// the lowest-priority tail packet (how heartbeats survive a
		// congested port in the gray-failure use case).
		victim := -1
		for i := p.head + p.n - 1; i >= p.head; i-- {
			if p.buf[i].Priority < pkt.Priority {
				victim = i
				break
			}
		}
		if victim < 0 {
			pkt.Dropped = true
			sw.stats.QueueDrops++
			return
		}
		p.buf[victim].Dropped = true
		sw.stats.QueueDrops++
		copy(p.buf[victim:], p.buf[victim+1:p.head+p.n])
		p.n--
		p.buf[p.head+p.n] = nil
	}
	pkt.Set(sw.fEnqQdepth, uint64(p.n))
	// Slide the window back to the front when it hits the buffer end.
	if p.head+p.n == len(p.buf) && p.head > 0 {
		copy(p.buf, p.buf[p.head:p.head+p.n])
		for i := p.n; i < p.head+p.n; i++ {
			p.buf[i] = nil
		}
		p.head = 0
	}
	// Insert in strict priority order (FIFO within a priority class).
	pos := p.head + p.n
	for pos > p.head && p.buf[pos-1].Priority < pkt.Priority {
		pos--
	}
	copy(p.buf[pos+1:p.head+p.n+1], p.buf[pos:p.head+p.n])
	p.buf[pos] = pkt
	p.n++
	if !p.busy {
		sw.drain(portN)
	}
}

func (sw *Switch) drain(portN int) {
	p := sw.ports[portN]
	if p.n == 0 {
		p.busy = false
		p.head = 0
		return
	}
	p.busy = true
	pkt := p.buf[p.head]
	p.buf[p.head] = nil
	p.head++
	p.n--
	if p.n == 0 {
		p.head = 0
	}
	bw := sw.cfg.PortBandwidth
	if p.bandwidth > 0 {
		bw = p.bandwidth
	}
	txTime := time.Duration(float64(pkt.Size*8) / bw * float64(time.Second))
	if txTime <= 0 {
		txTime = time.Nanosecond
	}
	sw.sim.ScheduleCall(txTime, sw.txDoneFn, pkt)
}

func (sw *Switch) finishEgress(portN int, pkt *packet.Packet) {
	pkt.Set(sw.fEgressPort, uint64(portN))
	env := sw.resetEnv(pkt)
	sw.runCompiled(env, sw.egressProg)
	if env.dropped {
		pkt.Dropped = true
		sw.stats.IngressDrops++
		return
	}
	if env.recirculate && pkt.Recirculations < sw.cfg.MaxRecirculations {
		sw.stats.Recirculated++
		pkt.Recirculations++
		sw.sim.ScheduleCall(sw.cfg.RecirculationLatency, sw.admitFn, pkt)
		return
	}
	p := sw.ports[portN]
	p.txBytes += uint64(pkt.Size)
	p.txPkts++
	sw.stats.TxPackets++
	if sw.Tx != nil {
		sw.Tx(portN, pkt)
	}
}

func evalCond(env *execEnv, c p4.CondExpr) bool {
	l, r := c.Left.Value(env), c.Right.Value(env)
	switch c.Op {
	case p4.CmpEQ:
		return l == r
	case p4.CmpNE:
		return l != r
	case p4.CmpLT:
		return l < r
	case p4.CmpLE:
		return l <= r
	case p4.CmpGT:
		return l > r
	case p4.CmpGE:
		return l >= r
	}
	return false
}

// execEnv implements p4.Env for one packet's pipeline pass.
type execEnv struct {
	sw          *Switch
	pkt         *packet.Packet
	params      []uint64
	dropped     bool
	recirculate bool
}

func (e *execEnv) Get(id packet.FieldID) uint64    { return e.pkt.Get(id) }
func (e *execEnv) Set(id packet.FieldID, v uint64) { e.pkt.Set(id, v) }
func (e *execEnv) RegRead(reg string, idx uint64) uint64 {
	return e.sw.registers[reg].read(idx)
}
func (e *execEnv) RegWrite(reg string, idx uint64, v uint64) {
	e.sw.registers[reg].write(idx, v)
}
func (e *execEnv) Drop()              { e.dropped = true }
func (e *execEnv) Param(i int) uint64 { return e.params[i] }
func (e *execEnv) Recirculate()       { e.recirculate = true }

func (e *execEnv) Hash(name string) uint64 {
	return e.sw.hashValue(e.pkt, e.sw.hashIndex[name])
}

// hashValue computes hash idx over pkt's fields. Written without an
// inner closure so the accumulator stays in registers on the per-packet
// path.
func (sw *Switch) hashValue(pkt *packet.Packet, idx int) uint64 {
	h := sw.hashDefs[idx]
	seed := sw.hashSeeds[idx]
	var acc uint64 = 14695981039346656037 ^ seed // FNV offset basis, seed-mixed
	if h.Algo == p4.HashIdentity {
		acc = seed
		for _, f := range h.Fields {
			acc = acc<<8 | (pkt.Get(f) & 0xFF)
		}
	} else {
		for _, f := range h.Fields {
			v := pkt.Get(f)
			for i := 0; i < 8; i++ {
				acc ^= (v >> uint(8*i)) & 0xFF
				acc *= 1099511628211
			}
		}
		if h.Algo == p4.HashCRC16 {
			acc ^= acc >> 16
		}
	}
	return acc & packet.Mask(h.Width)
}

// SetHashSeed rotates the seed of a hash calculation at runtime, the
// mechanism behind shifting ECMP hash functions (use case #3).
func (sw *Switch) SetHashSeed(name string, seed uint64) error {
	idx, ok := sw.hashIndex[name]
	if !ok {
		return fmt.Errorf("rmt: unknown hash calculation %q: %w", name, ErrUnknownHash)
	}
	sw.hashSeeds[idx] = seed
	sw.configWrites++
	return nil
}

// ---- Control-plane access points ----
//
// Each method below is a single atomic mutation or read of switch state,
// the granularity real drivers provide over PCIe. Latency, batching, and
// contention are modeled by internal/driver on top of these.

// AddEntry installs a table entry and returns its handle.
func (sw *Switch) AddEntry(table string, e Entry) (EntryHandle, error) {
	ti, ok := sw.tables[table]
	if !ok {
		return 0, fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	sw.configWrites++
	return ti.add(e)
}

// ModifyEntry rebinds an entry's action and data.
func (sw *Switch) ModifyEntry(table string, h EntryHandle, action string, data []uint64) error {
	ti, ok := sw.tables[table]
	if !ok {
		return fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	sw.configWrites++
	return ti.modify(h, action, data)
}

// DeleteEntry removes an entry.
func (sw *Switch) DeleteEntry(table string, h EntryHandle) error {
	ti, ok := sw.tables[table]
	if !ok {
		return fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	sw.configWrites++
	return ti.del(h)
}

// SetDefaultAction replaces a table's miss action.
func (sw *Switch) SetDefaultAction(table string, call *p4.ActionCall) error {
	ti, ok := sw.tables[table]
	if !ok {
		return fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	sw.configWrites++
	return ti.setDefault(call)
}

// DefaultAction returns a copy of a table's current miss action (nil if
// the table has none configured). This is the read side of the audit
// path: recovery derives the live vv/mv bits from the master init
// table's default-action data.
func (sw *Switch) DefaultAction(table string) (*p4.ActionCall, error) {
	ti, ok := sw.tables[table]
	if !ok {
		return nil, fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	if ti.defaultAction == nil {
		return nil, nil
	}
	call := *ti.defaultAction
	call.Data = append([]uint64(nil), call.Data...)
	return &call, nil
}

// Entries returns a snapshot of a table's installed entries.
func (sw *Switch) Entries(table string) ([]Entry, error) {
	ti, ok := sw.tables[table]
	if !ok {
		return nil, fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	return ti.entries(), nil
}

// TableCounters returns hit/miss counters for a table.
func (sw *Switch) TableCounters(table string) (hits, misses uint64, err error) {
	ti, ok := sw.tables[table]
	if !ok {
		return 0, 0, fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	return ti.Hits, ti.Misses, nil
}

// TableStats describes one table's runtime state: occupancy, lookup
// counters, and which index the lookups took. It makes the fast-path
// index structures observable from the control plane instead of
// trusted.
type TableStats struct {
	// Entries is the current occupancy.
	Entries int
	// Hits and Misses count data-plane lookups.
	Hits, Misses uint64
	// Index names the lookup structure in use: "exact" (hash index),
	// "bucketed" (TCAM partitioned by an exact column), or "linear"
	// (full TCAM scan).
	Index string
	// Buckets is the number of populated partitions when Index is
	// "bucketed" (0 otherwise).
	Buckets int
}

// TableStats reports a table's occupancy, hit/miss counters, and index
// kind.
func (sw *Switch) TableStats(table string) (TableStats, error) {
	ti, ok := sw.tables[table]
	if !ok {
		return TableStats{}, fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	st := TableStats{Entries: len(ti.byHandle), Hits: ti.Hits, Misses: ti.Misses}
	switch {
	case ti.allExact:
		st.Index = "exact"
	case ti.buckets != nil:
		st.Index = "bucketed"
		st.Buckets = len(ti.buckets)
	default:
		st.Index = "linear"
	}
	return st, nil
}

// LookupProbe returns a function performing raw match lookups against
// one table, bypassing action execution. This is the microbenchmark and
// diagnostics hook behind cmd/perfbench: it exposes exactly the lookup
// the data plane performs (including index selection) without the rest
// of the pipeline around it. Probes count toward the table's hit/miss
// counters like any lookup. vals must have one value per key column.
func (sw *Switch) LookupProbe(table string) (func(vals []uint64) bool, error) {
	ti, ok := sw.tables[table]
	if !ok {
		return nil, fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	return func(vals []uint64) bool { return ti.lookup(vals) != nil }, nil
}

// RegRead reads one register cell from the control plane.
func (sw *Switch) RegRead(reg string, idx uint64) (uint64, error) {
	ri, ok := sw.registers[reg]
	if !ok {
		return 0, fmt.Errorf("rmt: unknown register %q: %w", reg, ErrUnknownRegister)
	}
	return ri.readChecked(idx)
}

// RegReadRange reads cells [lo, hi) of a register array.
func (sw *Switch) RegReadRange(reg string, lo, hi uint64) ([]uint64, error) {
	ri, ok := sw.registers[reg]
	if !ok {
		return nil, fmt.Errorf("rmt: unknown register %q: %w", reg, ErrUnknownRegister)
	}
	return ri.readRange(lo, hi)
}

// RegReadRangeInto appends cells [lo, hi) of a register array to dst and
// returns the extended slice. The allocation-free variant of
// RegReadRange: with cap(dst) ≥ hi-lo no heap allocation occurs, which
// the driver's batched poll path relies on.
func (sw *Switch) RegReadRangeInto(reg string, lo, hi uint64, dst []uint64) ([]uint64, error) {
	ri, ok := sw.registers[reg]
	if !ok {
		return nil, fmt.Errorf("rmt: unknown register %q: %w", reg, ErrUnknownRegister)
	}
	return ri.readRangeInto(lo, hi, dst)
}

// RegWrite writes one register cell from the control plane.
func (sw *Switch) RegWrite(reg string, idx uint64, v uint64) error {
	ri, ok := sw.registers[reg]
	if !ok {
		return fmt.Errorf("rmt: unknown register %q: %w", reg, ErrUnknownRegister)
	}
	sw.configWrites++
	return ri.writeChecked(idx, v)
}

// ConfigWrites reports the number of control-plane mutations applied.
func (sw *Switch) ConfigWrites() uint64 { return sw.configWrites }
