// Package rmt models a Reconfigurable Match Table (RMT) switch ASIC: the
// execution substrate the Mantis paper targets (a Tofino-based
// Wedge100BF-32X in the original evaluation).
//
// The model executes a p4.Program over packets on a shared virtual
// clock. It reproduces the properties the paper's mechanisms depend on:
//
//   - Packets traverse a pipeline with a fixed latency; packets that
//     entered before a configuration change complete under the old
//     configuration (the model processes each packet's pipeline pass
//     atomically, which is the per-packet consistency real ASICs give).
//   - Control-plane operations mutate exactly one table entry, default
//     action, or register cell at a time — single-entry atomicity, the
//     primitive Mantis builds its serializable three-phase protocol on.
//   - Stateful SRAM registers are readable/writable from the data plane
//     and pollable from the control plane.
//   - Egress ports have finite queues drained at link bandwidth, so
//     queue depth, loss, and congestion are observable — required by the
//     hash-polarization and RL use cases.
//
// Latency and contention of the control channel (PCIe) are modeled in
// internal/driver, which wraps the instantaneous mutators defined here.
package rmt

import (
	"fmt"
	"time"

	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Config sets the physical parameters of the modeled switch.
type Config struct {
	// NumPorts is the number of front-panel ports.
	NumPorts int
	// QueueCapacity is the per-port egress queue depth, in packets.
	QueueCapacity int
	// PipelineLatency is the time from ingress MAC to egress queue
	// admission (100s of ns on real hardware).
	PipelineLatency time.Duration
	// PortBandwidth is the drain rate of each port in bits per second.
	PortBandwidth float64
	// RecirculationLatency is the extra delay of one recirculation pass.
	RecirculationLatency time.Duration
	// MaxRecirculations bounds recirculation loops (safety net).
	MaxRecirculations int
	// IngressCapacityPPS bounds the packet rate the ingress pipeline can
	// process (0 = unlimited). Recirculated packets consume the same
	// capacity as fresh arrivals — the cost §2 quantifies ("recirculating
	// every packet twice drops usable throughput to 38%").
	IngressCapacityPPS float64
}

// DefaultConfig matches the paper's testbed scale: a 32x25Gbps switch.
func DefaultConfig() Config {
	return Config{
		NumPorts:             32,
		QueueCapacity:        256,
		PipelineLatency:      400 * time.Nanosecond,
		PortBandwidth:        25e9,
		RecirculationLatency: 400 * time.Nanosecond,
		MaxRecirculations:    4,
	}
}

// Stats aggregates switch-level counters.
type Stats struct {
	RxPackets     uint64
	TxPackets     uint64
	IngressDrops  uint64 // dropped by a data-plane drop() action
	QueueDrops    uint64 // tail drops at full egress queues
	PortDownDrops uint64
	Recirculated  uint64
}

// port models one egress port: a FIFO queue drained at link bandwidth.
type port struct {
	queue   []*packet.Packet
	up      bool
	busy    bool
	txBytes uint64
	txPkts  uint64
	// bandwidth overrides Config.PortBandwidth when > 0.
	bandwidth float64
}

// Switch is a running RMT switch instance executing one program.
type Switch struct {
	sim  *sim.Simulator
	prog *p4.Program
	cfg  Config

	tables    map[string]*tableInstance
	registers map[string]*registerInstance
	hashSeeds map[string]uint64

	ports []*port

	// Tx is invoked when a packet leaves a port (after egress pipeline
	// and serialization). The netsim layer wires this to links.
	Tx func(portN int, pkt *packet.Packet)

	stats Stats

	// configWrites counts control-plane mutations, for diagnostics.
	configWrites uint64

	// ingressBusyUntil serializes pipeline admission when
	// IngressCapacityPPS is set.
	ingressBusyUntil sim.Time

	// cached standard-metadata field IDs
	fIngressPort, fEgressSpec, fPacketLen packet.FieldID
	fTimestamp, fEnqQdepth, fEgressPort   packet.FieldID
	fPriority                             packet.FieldID
}

// New instantiates a switch running prog. The program must validate.
func New(s *sim.Simulator, prog *p4.Program, cfg Config) (*Switch, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("rmt: invalid program: %w", err)
	}
	if cfg.NumPorts <= 0 {
		return nil, fmt.Errorf("rmt: NumPorts must be positive")
	}
	sw := &Switch{
		sim:       s,
		prog:      prog,
		cfg:       cfg,
		tables:    make(map[string]*tableInstance),
		registers: make(map[string]*registerInstance),
		hashSeeds: make(map[string]uint64),
	}
	for name, def := range prog.Tables {
		sw.tables[name] = newTableInstance(prog, def)
	}
	for name, def := range prog.Registers {
		sw.registers[name] = newRegisterInstance(def)
	}
	sw.ports = make([]*port, cfg.NumPorts)
	for i := range sw.ports {
		sw.ports[i] = &port{up: true}
	}
	mustID := func(name string) packet.FieldID { return prog.Schema.MustID(name) }
	sw.fIngressPort = mustID(p4.FieldIngressPort)
	sw.fEgressSpec = mustID(p4.FieldEgressSpec)
	sw.fPacketLen = mustID(p4.FieldPacketLen)
	sw.fTimestamp = mustID(p4.FieldTimestamp)
	sw.fEnqQdepth = mustID(p4.FieldEnqQdepth)
	sw.fEgressPort = mustID(p4.FieldEgressPort)
	sw.fPriority = mustID(p4.FieldPriority)
	return sw, nil
}

// Program returns the loaded program.
func (sw *Switch) Program() *p4.Program { return sw.prog }

// Config returns the switch configuration.
func (sw *Switch) Config() Config { return sw.cfg }

// Stats returns a copy of the aggregate counters.
func (sw *Switch) Stats() Stats { return sw.stats }

// Now returns the current virtual time (convenience for callers holding
// only the switch).
func (sw *Switch) Now() sim.Time { return sw.sim.Now() }

// SetPortUp raises or lowers a port. Packets destined to a down port are
// dropped at the traffic manager.
func (sw *Switch) SetPortUp(portN int, up bool) {
	sw.ports[portN].up = up
}

// SetPortBandwidth overrides one port's drain rate (bits per second),
// e.g. to model a 10 Gbps bottleneck on an otherwise 25 Gbps switch.
func (sw *Switch) SetPortBandwidth(portN int, bps float64) {
	sw.ports[portN].bandwidth = bps
}

// PortUp reports the port's administrative state.
func (sw *Switch) PortUp(portN int) bool { return sw.ports[portN].up }

// QueueDepth returns the instantaneous egress queue occupancy of a port,
// in packets.
func (sw *Switch) QueueDepth(portN int) int { return len(sw.ports[portN].queue) }

// PortTxBytes returns the cumulative bytes transmitted by a port.
func (sw *Switch) PortTxBytes(portN int) uint64 { return sw.ports[portN].txBytes }

// Inject delivers a packet to the switch on the given ingress port at
// the current virtual time. Processing of the ingress pipeline happens
// immediately (atomically with respect to other events); queueing and
// egress follow on the virtual clock.
func (sw *Switch) Inject(portN int, pkt *packet.Packet) {
	sw.stats.RxPackets++
	pkt.IngressPort = portN
	sw.admit(pkt)
}

// admit schedules one ingress-pipeline pass, honoring the pipeline's
// packet-rate capacity. Fresh arrivals and recirculations share the
// capacity; the admission buffer is small (pipelines have no deep
// ingress queues), so sustained overload drops — which is what divides
// usable throughput by ~(N+1) when every packet takes N+1 passes.
func (sw *Switch) admit(pkt *packet.Packet) {
	if sw.cfg.IngressCapacityPPS <= 0 {
		sw.runIngress(pkt)
		return
	}
	slot := time.Duration(float64(time.Second) / sw.cfg.IngressCapacityPPS)
	now := sw.sim.Now()
	start := now
	if sw.ingressBusyUntil > start {
		start = sw.ingressBusyUntil
	}
	if backlog := int(start.Sub(now) / slot); backlog >= 64 {
		pkt.Dropped = true
		sw.stats.IngressDrops++
		return
	}
	sw.ingressBusyUntil = start.Add(slot)
	sw.sim.At(start, func() { sw.runIngress(pkt) })
}

func (sw *Switch) runIngress(pkt *packet.Packet) {
	pkt.Set(sw.fIngressPort, uint64(pkt.IngressPort))
	pkt.Set(sw.fPacketLen, uint64(pkt.Size))
	pkt.Set(sw.fTimestamp, uint64(sw.sim.Now()))
	pkt.Set(sw.fPriority, uint64(pkt.Priority))

	env := execEnv{sw: sw, pkt: pkt}
	sw.runControl(&env, sw.prog.Ingress)

	if env.dropped {
		pkt.Dropped = true
		sw.stats.IngressDrops++
		return
	}
	egress := int(pkt.Get(sw.fEgressSpec))
	pkt.EgressPort = egress
	recirc := env.recirculate
	// Traffic-manager admission happens after the ingress pipeline delay.
	sw.sim.Schedule(sw.cfg.PipelineLatency, func() { sw.enqueue(egress, pkt, recirc) })
}

func (sw *Switch) enqueue(portN int, pkt *packet.Packet, recirc bool) {
	if portN < 0 || portN >= len(sw.ports) {
		pkt.Dropped = true
		sw.stats.IngressDrops++
		return
	}
	p := sw.ports[portN]
	if !p.up {
		pkt.Dropped = true
		sw.stats.PortDownDrops++
		return
	}
	if len(p.queue) >= sw.cfg.QueueCapacity {
		// Strict-priority admission: a higher-priority arrival may evict
		// the lowest-priority tail packet (how heartbeats survive a
		// congested port in the gray-failure use case).
		victim := -1
		for i := len(p.queue) - 1; i >= 0; i-- {
			if p.queue[i].Priority < pkt.Priority {
				victim = i
				break
			}
		}
		if victim < 0 {
			pkt.Dropped = true
			sw.stats.QueueDrops++
			return
		}
		p.queue[victim].Dropped = true
		sw.stats.QueueDrops++
		p.queue = append(p.queue[:victim], p.queue[victim+1:]...)
	}
	pkt.Set(sw.fEnqQdepth, uint64(len(p.queue)))
	if recirc {
		pkt.Recirculations++
	}
	// Insert in strict priority order (FIFO within a priority class).
	pos := len(p.queue)
	for pos > 0 && p.queue[pos-1].Priority < pkt.Priority {
		pos--
	}
	p.queue = append(p.queue, nil)
	copy(p.queue[pos+1:], p.queue[pos:])
	p.queue[pos] = pkt
	if !p.busy {
		sw.drain(portN)
	}
}

func (sw *Switch) drain(portN int) {
	p := sw.ports[portN]
	if len(p.queue) == 0 {
		p.busy = false
		return
	}
	p.busy = true
	pkt := p.queue[0]
	p.queue = p.queue[1:]
	bw := sw.cfg.PortBandwidth
	if p.bandwidth > 0 {
		bw = p.bandwidth
	}
	txTime := time.Duration(float64(pkt.Size*8) / bw * float64(time.Second))
	if txTime <= 0 {
		txTime = time.Nanosecond
	}
	sw.sim.Schedule(txTime, func() {
		sw.finishEgress(portN, pkt)
		sw.drain(portN)
	})
}

func (sw *Switch) finishEgress(portN int, pkt *packet.Packet) {
	pkt.Set(sw.fEgressPort, uint64(portN))
	env := execEnv{sw: sw, pkt: pkt}
	sw.runControl(&env, sw.prog.Egress)
	if env.dropped {
		pkt.Dropped = true
		sw.stats.IngressDrops++
		return
	}
	if env.recirculate && pkt.Recirculations < sw.cfg.MaxRecirculations {
		sw.stats.Recirculated++
		pkt.Recirculations++
		sw.sim.Schedule(sw.cfg.RecirculationLatency, func() { sw.admit(pkt) })
		return
	}
	p := sw.ports[portN]
	p.txBytes += uint64(pkt.Size)
	p.txPkts++
	sw.stats.TxPackets++
	if sw.Tx != nil {
		sw.Tx(portN, pkt)
	}
}

func (sw *Switch) runControl(env *execEnv, stmts []p4.ControlStmt) {
	for _, s := range stmts {
		if env.dropped {
			return
		}
		switch st := s.(type) {
		case p4.Apply:
			sw.applyTable(env, st.Table)
		case p4.If:
			if evalCond(env, st.Cond) {
				sw.runControl(env, st.Then)
			} else {
				sw.runControl(env, st.Else)
			}
		}
	}
}

func evalCond(env *execEnv, c p4.CondExpr) bool {
	l, r := c.Left.Value(env), c.Right.Value(env)
	switch c.Op {
	case p4.CmpEQ:
		return l == r
	case p4.CmpNE:
		return l != r
	case p4.CmpLT:
		return l < r
	case p4.CmpLE:
		return l <= r
	case p4.CmpGT:
		return l > r
	case p4.CmpGE:
		return l >= r
	}
	return false
}

func (sw *Switch) applyTable(env *execEnv, name string) {
	ti := sw.tables[name]
	vals := make([]uint64, len(ti.def.Keys))
	for i, k := range ti.def.Keys {
		vals[i] = env.pkt.Get(k.Field)
		if k.StaticMask != 0 {
			vals[i] &= k.StaticMask
		}
	}
	var call *p4.ActionCall
	if e := ti.lookup(vals); e != nil {
		call = &p4.ActionCall{Action: e.Action, Data: e.Data}
	} else {
		call = ti.defaultAction
	}
	if call == nil {
		return
	}
	action := sw.prog.Actions[call.Action]
	env.params = call.Data
	for _, prim := range action.Body {
		prim.Exec(env)
	}
	env.params = nil
}

// execEnv implements p4.Env for one packet's pipeline pass.
type execEnv struct {
	sw          *Switch
	pkt         *packet.Packet
	params      []uint64
	dropped     bool
	recirculate bool
}

func (e *execEnv) Get(id packet.FieldID) uint64    { return e.pkt.Get(id) }
func (e *execEnv) Set(id packet.FieldID, v uint64) { e.pkt.Set(id, v) }
func (e *execEnv) RegRead(reg string, idx uint64) uint64 {
	return e.sw.registers[reg].read(idx)
}
func (e *execEnv) RegWrite(reg string, idx uint64, v uint64) {
	e.sw.registers[reg].write(idx, v)
}
func (e *execEnv) Drop()              { e.dropped = true }
func (e *execEnv) Param(i int) uint64 { return e.params[i] }
func (e *execEnv) Recirculate()       { e.recirculate = true }

func (e *execEnv) Hash(name string) uint64 {
	h := e.sw.prog.Hashes[name]
	seed := e.sw.hashSeeds[name]
	var acc uint64 = 14695981039346656037 ^ seed // FNV offset basis, seed-mixed
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			acc ^= (v >> uint(8*i)) & 0xFF
			acc *= 1099511628211
		}
	}
	if h.Algo == p4.HashIdentity {
		acc = seed
		for _, f := range h.Fields {
			acc = acc<<8 | (e.pkt.Get(f) & 0xFF)
		}
	} else {
		for _, f := range h.Fields {
			mix(e.pkt.Get(f))
		}
		if h.Algo == p4.HashCRC16 {
			acc ^= acc >> 16
		}
	}
	return acc & packet.Mask(h.Width)
}

// SetHashSeed rotates the seed of a hash calculation at runtime, the
// mechanism behind shifting ECMP hash functions (use case #3).
func (sw *Switch) SetHashSeed(name string, seed uint64) error {
	if _, ok := sw.prog.Hashes[name]; !ok {
		return fmt.Errorf("rmt: unknown hash calculation %q: %w", name, ErrUnknownHash)
	}
	sw.hashSeeds[name] = seed
	sw.configWrites++
	return nil
}

// ---- Control-plane access points ----
//
// Each method below is a single atomic mutation or read of switch state,
// the granularity real drivers provide over PCIe. Latency, batching, and
// contention are modeled by internal/driver on top of these.

// AddEntry installs a table entry and returns its handle.
func (sw *Switch) AddEntry(table string, e Entry) (EntryHandle, error) {
	ti, ok := sw.tables[table]
	if !ok {
		return 0, fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	sw.configWrites++
	return ti.add(e)
}

// ModifyEntry rebinds an entry's action and data.
func (sw *Switch) ModifyEntry(table string, h EntryHandle, action string, data []uint64) error {
	ti, ok := sw.tables[table]
	if !ok {
		return fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	sw.configWrites++
	return ti.modify(h, action, data)
}

// DeleteEntry removes an entry.
func (sw *Switch) DeleteEntry(table string, h EntryHandle) error {
	ti, ok := sw.tables[table]
	if !ok {
		return fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	sw.configWrites++
	return ti.del(h)
}

// SetDefaultAction replaces a table's miss action.
func (sw *Switch) SetDefaultAction(table string, call *p4.ActionCall) error {
	ti, ok := sw.tables[table]
	if !ok {
		return fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	sw.configWrites++
	return ti.setDefault(call)
}

// DefaultAction returns a copy of a table's current miss action (nil if
// the table has none configured). This is the read side of the audit
// path: recovery derives the live vv/mv bits from the master init
// table's default-action data.
func (sw *Switch) DefaultAction(table string) (*p4.ActionCall, error) {
	ti, ok := sw.tables[table]
	if !ok {
		return nil, fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	if ti.defaultAction == nil {
		return nil, nil
	}
	call := *ti.defaultAction
	call.Data = append([]uint64(nil), call.Data...)
	return &call, nil
}

// Entries returns a snapshot of a table's installed entries.
func (sw *Switch) Entries(table string) ([]Entry, error) {
	ti, ok := sw.tables[table]
	if !ok {
		return nil, fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	return ti.entries(), nil
}

// TableCounters returns hit/miss counters for a table.
func (sw *Switch) TableCounters(table string) (hits, misses uint64, err error) {
	ti, ok := sw.tables[table]
	if !ok {
		return 0, 0, fmt.Errorf("rmt: unknown table %q: %w", table, ErrUnknownTable)
	}
	return ti.Hits, ti.Misses, nil
}

// RegRead reads one register cell from the control plane.
func (sw *Switch) RegRead(reg string, idx uint64) (uint64, error) {
	ri, ok := sw.registers[reg]
	if !ok {
		return 0, fmt.Errorf("rmt: unknown register %q: %w", reg, ErrUnknownRegister)
	}
	return ri.readChecked(idx)
}

// RegReadRange reads cells [lo, hi) of a register array.
func (sw *Switch) RegReadRange(reg string, lo, hi uint64) ([]uint64, error) {
	ri, ok := sw.registers[reg]
	if !ok {
		return nil, fmt.Errorf("rmt: unknown register %q: %w", reg, ErrUnknownRegister)
	}
	return ri.readRange(lo, hi)
}

// RegWrite writes one register cell from the control plane.
func (sw *Switch) RegWrite(reg string, idx uint64, v uint64) error {
	ri, ok := sw.registers[reg]
	if !ok {
		return fmt.Errorf("rmt: unknown register %q: %w", reg, ErrUnknownRegister)
	}
	sw.configWrites++
	return ri.writeChecked(idx, v)
}

// ConfigWrites reports the number of control-plane mutations applied.
func (sw *Switch) ConfigWrites() uint64 { return sw.configWrites }
