package rmt

import "repro/internal/p4"

// Occupancy returns the live entry count of every table on the switch.
// The map is keyed by table name and freshly allocated per call, so
// callers can feed it straight into place.Options.Occupancy to re-run
// placement against what the control plane actually installed rather
// than the declared sizes.
func (sw *Switch) Occupancy() map[string]int {
	occ := make(map[string]int, len(sw.tables))
	for name, ti := range sw.tables {
		occ[name] = len(ti.byHandle)
	}
	return occ
}

// Footprints returns the per-table SRAM/TCAM footprint of the compiled
// program at live occupancy: each table is costed by Program.FootprintOf
// with its current entry count (minimum 1, so an installed-but-empty
// table still charges one entry of width).
func (sw *Switch) Footprints() map[string]p4.TableFootprint {
	out := make(map[string]p4.TableFootprint, len(sw.tables))
	for name, ti := range sw.tables {
		n := len(ti.byHandle)
		if n < 1 {
			n = 1
		}
		out[name] = sw.prog.FootprintOf(ti.def, n)
	}
	return out
}
