package rmt

import (
	"testing"
	"testing/quick"

	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/sim"
)

// testProgram builds a small but representative program: an exact-match
// forwarding table, a ternary ACL, a byte counter register, and an
// ECMP-style hash.
func testProgram(t testing.TB) *p4.Program {
	t.Helper()
	p := p4.NewProgram("rmt-test")
	p.DefineStandardMetadata()
	dst := p.Schema.Define("ipv4.dstAddr", 32)
	src := p.Schema.Define("ipv4.srcAddr", 32)
	proto := p.Schema.Define("ipv4.protocol", 8)
	hashOut := p.Schema.Define("meta.ecmp", 16)
	egr := p.Schema.MustID(p4.FieldEgressSpec)
	inp := p.Schema.MustID(p4.FieldIngressPort)
	plen := p.Schema.MustID(p4.FieldPacketLen)

	p.AddRegister(&p4.Register{Name: "port_bytes", Width: 64, Instances: 32})
	p.AddHash(&p4.HashCalc{Name: "ecmp_hash", Fields: []packet.FieldID{src, dst}, Algo: p4.HashCRC32, Width: 16})

	p.AddAction(&p4.Action{
		Name:   "set_egress",
		Params: []p4.Param{{Name: "port", Width: 16}},
		Body: []p4.Primitive{
			p4.ModifyField{Dst: egr, DstName: p4.FieldEgressSpec, Src: p4.ParamOp(0, "port")},
		},
	})
	p.AddAction(&p4.Action{Name: "do_drop", Body: []p4.Primitive{p4.Drop{}}})
	p.AddAction(&p4.Action{Name: "allow", Body: []p4.Primitive{p4.NoOp{}}})
	p.AddAction(&p4.Action{
		Name: "count_rx",
		Body: []p4.Primitive{
			p4.RegisterIncrement{Reg: "port_bytes", Index: p4.FieldOp(inp, p4.FieldIngressPort), By: p4.FieldOp(plen, p4.FieldPacketLen)},
		},
	})
	p.AddAction(&p4.Action{
		Name: "do_hash",
		Body: []p4.Primitive{
			p4.ModifyFieldWithHash{Dst: hashOut, DstName: "meta.ecmp", Hash: "ecmp_hash", Size: 4},
		},
	})
	p.AddAction(&p4.Action{Name: "do_recirc", Body: []p4.Primitive{p4.Recirculate{}}})

	p.AddTable(&p4.Table{
		Name:          "acl",
		Keys:          []p4.MatchKey{{FieldName: "ipv4.protocol", Field: proto, Width: 8, Kind: p4.MatchTernary}},
		ActionNames:   []string{"do_drop", "allow"},
		DefaultAction: &p4.ActionCall{Action: "allow"},
		Size:          16,
	})
	p.AddTable(&p4.Table{
		Name:          "forward",
		Keys:          []p4.MatchKey{{FieldName: "ipv4.dstAddr", Field: dst, Width: 32, Kind: p4.MatchExact}},
		ActionNames:   []string{"set_egress", "do_drop"},
		DefaultAction: &p4.ActionCall{Action: "do_drop"},
		Size:          8,
	})
	p.AddTable(&p4.Table{
		Name:          "rx_counter",
		ActionNames:   []string{"count_rx"},
		DefaultAction: &p4.ActionCall{Action: "count_rx"},
		Size:          1,
	})
	p.AddTable(&p4.Table{
		Name:          "hash_tbl",
		ActionNames:   []string{"do_hash"},
		DefaultAction: &p4.ActionCall{Action: "do_hash"},
		Size:          1,
	})
	p.AddTable(&p4.Table{
		Name:        "recirc_tbl",
		Keys:        []p4.MatchKey{{FieldName: "ipv4.protocol", Field: proto, Width: 8, Kind: p4.MatchExact}},
		ActionNames: []string{"do_recirc"},
		Size:        4,
	})
	p.Ingress = []p4.ControlStmt{
		p4.Apply{Table: "acl"},
		p4.Apply{Table: "forward"},
		p4.Apply{Table: "rx_counter"},
		p4.Apply{Table: "hash_tbl"},
	}
	p.Egress = []p4.ControlStmt{p4.Apply{Table: "recirc_tbl"}}
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	return p
}

func newTestSwitch(t testing.TB) (*sim.Simulator, *Switch) {
	t.Helper()
	s := sim.New(1)
	sw, err := New(s, testProgram(t), DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, sw
}

func mkPacket(sw *Switch, dst, src uint64, size int) *packet.Packet {
	pkt := sw.Program().Schema.New()
	pkt.SetName("ipv4.dstAddr", dst)
	pkt.SetName("ipv4.srcAddr", src)
	pkt.Size = size
	return pkt
}

func TestForwardingExactMatch(t *testing.T) {
	s, sw := newTestSwitch(t)
	if _, err := sw.AddEntry("forward", Entry{
		Keys: []KeySpec{ExactKey(0x0A000001)}, Action: "set_egress", Data: []uint64{5},
	}); err != nil {
		t.Fatal(err)
	}
	var gotPort = -1
	sw.Tx = func(p int, pkt *packet.Packet) { gotPort = p }
	sw.Inject(0, mkPacket(sw, 0x0A000001, 1, 100))
	s.Run()
	if gotPort != 5 {
		t.Fatalf("egress port = %d, want 5", gotPort)
	}
	st := sw.Stats()
	if st.RxPackets != 1 || st.TxPackets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMissRunsDefaultDrop(t *testing.T) {
	s, sw := newTestSwitch(t)
	txed := false
	sw.Tx = func(int, *packet.Packet) { txed = true }
	sw.Inject(0, mkPacket(sw, 0xDEAD, 1, 100))
	s.Run()
	if txed {
		t.Fatal("missed packet was transmitted")
	}
	if sw.Stats().IngressDrops != 1 {
		t.Fatalf("IngressDrops = %d", sw.Stats().IngressDrops)
	}
}

func TestTernaryPriority(t *testing.T) {
	s, sw := newTestSwitch(t)
	// Low-priority wildcard allow, high-priority drop for proto 17.
	if _, err := sw.AddEntry("acl", Entry{
		Keys: []KeySpec{WildcardKey()}, Priority: 1, Action: "allow",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.AddEntry("acl", Entry{
		Keys: []KeySpec{TernaryKey(17, 0xFF)}, Priority: 10, Action: "do_drop",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.AddEntry("forward", Entry{
		Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2},
	}); err != nil {
		t.Fatal(err)
	}
	var tx int
	sw.Tx = func(int, *packet.Packet) { tx++ }

	udp := mkPacket(sw, 1, 9, 100)
	udp.SetName("ipv4.protocol", 17)
	sw.Inject(0, udp)
	tcp := mkPacket(sw, 1, 9, 100)
	tcp.SetName("ipv4.protocol", 6)
	sw.Inject(0, tcp)
	s.Run()
	if tx != 1 {
		t.Fatalf("tx = %d, want 1 (UDP dropped by priority rule)", tx)
	}
}

func TestLPMKeyMatching(t *testing.T) {
	k := LPMKey(0x0A000000, 8, 32)
	if !matchKey(p4.MatchLPM, k, 0x0A123456) {
		t.Fatal("10.0.0.0/8 should match 10.18.52.86")
	}
	if matchKey(p4.MatchLPM, k, 0x0B000000) {
		t.Fatal("10.0.0.0/8 should not match 11.0.0.0")
	}
	full := LPMKey(0xFFFFFFFF, 32, 32)
	if !matchKey(p4.MatchLPM, full, 0xFFFFFFFF) || matchKey(p4.MatchLPM, full, 0xFFFFFFFE) {
		t.Fatal("/32 prefix broken")
	}
	zero := LPMKey(5, 0, 32)
	if !matchKey(p4.MatchLPM, zero, 12345) {
		t.Fatal("/0 should match anything")
	}
}

func TestRangeKeyMatching(t *testing.T) {
	k := RangeKey(10, 20)
	for v, want := range map[uint64]bool{9: false, 10: true, 15: true, 20: true, 21: false} {
		if matchKey(p4.MatchRange, k, v) != want {
			t.Errorf("range [10,20] match %d = %v, want %v", v, !want, want)
		}
	}
}

func TestDuplicateExactEntryRejected(t *testing.T) {
	_, sw := newTestSwitch(t)
	e := Entry{Keys: []KeySpec{ExactKey(7)}, Action: "set_egress", Data: []uint64{1}}
	if _, err := sw.AddEntry("forward", e); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.AddEntry("forward", e); err == nil {
		t.Fatal("duplicate exact entry accepted")
	}
}

func TestTableCapacity(t *testing.T) {
	_, sw := newTestSwitch(t)
	for i := 0; i < 8; i++ {
		if _, err := sw.AddEntry("forward", Entry{
			Keys: []KeySpec{ExactKey(uint64(i))}, Action: "set_egress", Data: []uint64{1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sw.AddEntry("forward", Entry{
		Keys: []KeySpec{ExactKey(99)}, Action: "set_egress", Data: []uint64{1},
	}); err == nil {
		t.Fatal("add beyond capacity accepted")
	}
}

func TestEntryValidation(t *testing.T) {
	_, sw := newTestSwitch(t)
	if _, err := sw.AddEntry("forward", Entry{
		Keys: []KeySpec{ExactKey(1)}, Action: "allow",
	}); err == nil {
		t.Fatal("disallowed action accepted")
	}
	if _, err := sw.AddEntry("forward", Entry{
		Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: nil,
	}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := sw.AddEntry("forward", Entry{
		Keys: []KeySpec{ExactKey(1), ExactKey(2)}, Action: "set_egress", Data: []uint64{1},
	}); err == nil {
		t.Fatal("wrong key count accepted")
	}
	if _, err := sw.AddEntry("ghost", Entry{}); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestModifyEntry(t *testing.T) {
	s, sw := newTestSwitch(t)
	h, err := sw.AddEntry("forward", Entry{
		Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.ModifyEntry("forward", h, "set_egress", []uint64{7}); err != nil {
		t.Fatal(err)
	}
	var gotPort int
	sw.Tx = func(p int, pkt *packet.Packet) { gotPort = p }
	sw.Inject(0, mkPacket(sw, 1, 9, 64))
	s.Run()
	if gotPort != 7 {
		t.Fatalf("port after modify = %d, want 7", gotPort)
	}
	if err := sw.ModifyEntry("forward", EntryHandle(999), "set_egress", []uint64{1}); err == nil {
		t.Fatal("modify of missing handle accepted")
	}
}

func TestDeleteEntry(t *testing.T) {
	s, sw := newTestSwitch(t)
	h, _ := sw.AddEntry("forward", Entry{
		Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2},
	})
	if err := sw.DeleteEntry("forward", h); err != nil {
		t.Fatal(err)
	}
	tx := false
	sw.Tx = func(int, *packet.Packet) { tx = true }
	sw.Inject(0, mkPacket(sw, 1, 9, 64))
	s.Run()
	if tx {
		t.Fatal("deleted entry still matches")
	}
	if err := sw.DeleteEntry("forward", h); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestSetDefaultAction(t *testing.T) {
	s, sw := newTestSwitch(t)
	if err := sw.SetDefaultAction("forward", &p4.ActionCall{Action: "set_egress", Data: []uint64{3}}); err != nil {
		t.Fatal(err)
	}
	var gotPort int
	sw.Tx = func(p int, pkt *packet.Packet) { gotPort = p }
	sw.Inject(0, mkPacket(sw, 0xBEEF, 9, 64))
	s.Run()
	if gotPort != 3 {
		t.Fatalf("default action port = %d, want 3", gotPort)
	}
	if err := sw.SetDefaultAction("forward", &p4.ActionCall{Action: "nope"}); err == nil {
		t.Fatal("unknown default action accepted")
	}
}

func TestRegisterDataPlaneAndControlPlane(t *testing.T) {
	s, sw := newTestSwitch(t)
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	sw.Inject(4, mkPacket(sw, 1, 9, 100))
	sw.Inject(4, mkPacket(sw, 1, 9, 150))
	s.Run()
	v, err := sw.RegRead("port_bytes", 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 250 {
		t.Fatalf("port_bytes[4] = %d, want 250", v)
	}
	vals, err := sw.RegReadRange("port_bytes", 0, 32)
	if err != nil || len(vals) != 32 || vals[4] != 250 {
		t.Fatalf("range read: %v %v", vals, err)
	}
	if err := sw.RegWrite("port_bytes", 4, 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := sw.RegRead("port_bytes", 4); v != 0 {
		t.Fatal("control-plane write lost")
	}
	if _, err := sw.RegRead("port_bytes", 32); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := sw.RegRead("ghost", 0); err == nil {
		t.Fatal("unknown register accepted")
	}
}

func TestRegisterWidthMasking(t *testing.T) {
	ri := newRegisterInstance(&p4.Register{Name: "r", Width: 16, Instances: 4})
	ri.write(0, 0x1FFFF)
	if ri.read(0) != 0xFFFF {
		t.Fatalf("16-bit register holds %#x", ri.read(0))
	}
}

func TestQueueTailDrop(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.QueueCapacity = 4
	cfg.PortBandwidth = 1e9 // slow port: 1500B takes 12µs
	sw, err := New(s, testProgram(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	for i := 0; i < 20; i++ {
		sw.Inject(0, mkPacket(sw, 1, 9, 1500))
	}
	s.Run()
	st := sw.Stats()
	if st.QueueDrops == 0 {
		t.Fatal("no tail drops despite 20 packets into capacity-4 queue")
	}
	if st.TxPackets+st.QueueDrops != 20 {
		t.Fatalf("tx %d + drops %d != 20", st.TxPackets, st.QueueDrops)
	}
}

func TestEnqQdepthMetadata(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.PortBandwidth = 1e9
	sw, _ := New(s, testProgram(t), cfg)
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	var depths []uint64
	sw.Tx = func(_ int, pkt *packet.Packet) {
		depths = append(depths, pkt.GetName(p4.FieldEnqQdepth))
	}
	for i := 0; i < 5; i++ {
		sw.Inject(0, mkPacket(sw, 1, 9, 1500))
	}
	s.Run()
	if len(depths) != 5 {
		t.Fatalf("tx count = %d", len(depths))
	}
	// All five packets enqueue before any finish serializing; the head
	// packet leaves the queue when its transmission starts, so the
	// observed depths are 0,0,1,2,3.
	want := []uint64{0, 0, 1, 2, 3}
	for i, d := range depths {
		if d != want[i] {
			t.Fatalf("depths = %v, want %v", depths, want)
		}
	}
}

func TestPortDown(t *testing.T) {
	s, sw := newTestSwitch(t)
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	sw.SetPortUp(2, false)
	if sw.PortUp(2) {
		t.Fatal("PortUp after SetPortUp(false)")
	}
	tx := false
	sw.Tx = func(int, *packet.Packet) { tx = true }
	sw.Inject(0, mkPacket(sw, 1, 9, 64))
	s.Run()
	if tx {
		t.Fatal("packet transmitted out a down port")
	}
	if sw.Stats().PortDownDrops != 1 {
		t.Fatalf("PortDownDrops = %d", sw.Stats().PortDownDrops)
	}
}

func TestRecirculation(t *testing.T) {
	s, sw := newTestSwitch(t)
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	// proto 99 packets recirculate in egress.
	sw.AddEntry("recirc_tbl", Entry{Keys: []KeySpec{ExactKey(99)}, Action: "do_recirc"})
	var recircs int
	sw.Tx = func(_ int, pkt *packet.Packet) { recircs = pkt.Recirculations }
	pkt := mkPacket(sw, 1, 9, 64)
	pkt.SetName("ipv4.protocol", 99)
	sw.Inject(0, pkt)
	s.Run()
	if recircs != DefaultConfig().MaxRecirculations {
		t.Fatalf("recirculations = %d, want max %d", recircs, DefaultConfig().MaxRecirculations)
	}
	if sw.Stats().Recirculated == 0 {
		t.Fatal("Recirculated counter zero")
	}
}

func TestHashSeedShiftsOutput(t *testing.T) {
	s, sw := newTestSwitch(t)
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	var hashes []uint64
	sw.Tx = func(_ int, pkt *packet.Packet) { hashes = append(hashes, pkt.GetName("meta.ecmp")) }

	sw.Inject(0, mkPacket(sw, 1, 0x01020304, 64))
	s.Run()
	if err := sw.SetHashSeed("ecmp_hash", 12345); err != nil {
		t.Fatal(err)
	}
	sw.Inject(0, mkPacket(sw, 1, 0x01020304, 64))
	s.Run()
	if len(hashes) != 2 {
		t.Fatalf("got %d packets", len(hashes))
	}
	// Same flow, different seed: the ECMP choice should (for this seed)
	// differ, demonstrating runtime hash reconfiguration.
	if hashes[0] == hashes[1] {
		t.Fatalf("hash unchanged by seed: %v", hashes)
	}
	if err := sw.SetHashSeed("ghost", 1); err == nil {
		t.Fatal("unknown hash accepted")
	}
}

func TestHashStableWithinSeed(t *testing.T) {
	s, sw := newTestSwitch(t)
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	var hashes []uint64
	sw.Tx = func(_ int, pkt *packet.Packet) { hashes = append(hashes, pkt.GetName("meta.ecmp")) }
	for i := 0; i < 3; i++ {
		sw.Inject(0, mkPacket(sw, 1, 0xAABBCCDD, 64))
	}
	s.Run()
	if hashes[0] != hashes[1] || hashes[1] != hashes[2] {
		t.Fatalf("same flow hashed inconsistently: %v", hashes)
	}
}

func TestTableCounters(t *testing.T) {
	s, sw := newTestSwitch(t)
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	sw.Inject(0, mkPacket(sw, 1, 9, 64))
	sw.Inject(0, mkPacket(sw, 2, 9, 64))
	s.Run()
	hits, misses, err := sw.TableCounters("forward")
	if err != nil || hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d err=%v", hits, misses, err)
	}
}

func TestEntriesSnapshot(t *testing.T) {
	_, sw := newTestSwitch(t)
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(2)}, Action: "do_drop"})
	es, err := sw.Entries("forward")
	if err != nil || len(es) != 2 {
		t.Fatalf("entries = %v err = %v", es, err)
	}
	if es[0].Handle >= es[1].Handle {
		t.Fatal("entries not sorted by handle")
	}
}

func TestPipelineLatencyApplied(t *testing.T) {
	s, sw := newTestSwitch(t)
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	var txAt sim.Time
	sw.Tx = func(int, *packet.Packet) { txAt = s.Now() }
	sw.Inject(0, mkPacket(sw, 1, 9, 125)) // 125B at 25Gbps = 40ns serialize
	s.Run()
	want := sim.Time(400 + 40) // pipeline latency + serialization
	if txAt != want {
		t.Fatalf("tx at %v, want %v", txAt, want)
	}
}

// Property: in a TCAM table, lookup returns an entry with maximal
// priority among all matching entries.
func TestPropertyTCAMPriority(t *testing.T) {
	f := func(protoVals []uint8, prios []uint8, probe uint8) bool {
		if len(protoVals) > len(prios) {
			protoVals = protoVals[:len(prios)]
		}
		prog := p4.NewProgram("prop")
		prog.DefineStandardMetadata()
		fld := prog.Schema.Define("h.p", 8)
		prog.AddAction(&p4.Action{Name: "a", Params: []p4.Param{{Name: "id", Width: 32}}, Body: []p4.Primitive{p4.NoOp{}}})
		prog.AddTable(&p4.Table{
			Name:        "t",
			Keys:        []p4.MatchKey{{FieldName: "h.p", Field: fld, Width: 8, Kind: p4.MatchTernary}},
			ActionNames: []string{"a"},
		})
		ti := newTableInstance(prog, prog.Tables["t"])
		type ent struct {
			v    uint8
			prio int
		}
		var ents []ent
		for i, v := range protoVals {
			ents = append(ents, ent{v, int(prios[i])})
			ti.add(Entry{Keys: []KeySpec{TernaryKey(uint64(v), 0xFF)}, Priority: int(prios[i]), Action: "a", Data: []uint64{uint64(i)}})
		}
		got := ti.lookup([]uint64{uint64(probe)})
		best := -1
		for _, e := range ents {
			if e.v == probe && e.prio > best {
				best = e.prio
			}
		}
		if best == -1 {
			return got == nil
		}
		return got != nil && got.Priority == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigWritesCounter(t *testing.T) {
	_, sw := newTestSwitch(t)
	before := sw.ConfigWrites()
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	sw.RegWrite("port_bytes", 0, 1)
	if sw.ConfigWrites() != before+2 {
		t.Fatalf("ConfigWrites = %d, want %d", sw.ConfigWrites(), before+2)
	}
}

func TestNewRejectsInvalidProgram(t *testing.T) {
	s := sim.New(1)
	bad := p4.NewProgram("bad")
	bad.Ingress = []p4.ControlStmt{p4.Apply{Table: "missing"}}
	if _, err := New(s, bad, DefaultConfig()); err == nil {
		t.Fatal("invalid program accepted")
	}
	good := p4.NewProgram("ok")
	good.DefineStandardMetadata()
	if _, err := New(s, good, Config{}); err == nil {
		t.Fatal("zero ports accepted")
	}
}

func BenchmarkPipelinePacket(b *testing.B) {
	s := sim.New(1)
	sw, err := New(s, testProgram(b), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	pkt := mkPacket(sw, 1, 9, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkt.Clone()
		sw.Inject(0, p)
		s.Run()
	}
}

// TestPriorityQueueing: high-priority packets jump a congested queue
// and are never the ones tail-dropped — the property heartbeats rely on.
func TestPriorityQueueing(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.QueueCapacity = 8
	cfg.PortBandwidth = 1e9
	sw, err := New(s, testProgram(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	var order []uint64
	sw.Tx = func(_ int, pkt *packet.Packet) { order = append(order, pkt.GetName("ipv4.srcAddr")) }
	// Fill the queue with bulk traffic (priority 0, src = i), then inject
	// a priority-7 packet (src = 999).
	for i := 0; i < 10; i++ {
		sw.Inject(0, mkPacket(sw, 1, uint64(i), 1500))
	}
	hb := mkPacket(sw, 1, 999, 64)
	hb.Priority = 7
	sw.Inject(0, hb)
	s.Run()
	if sw.Stats().QueueDrops == 0 {
		t.Fatal("expected tail drops")
	}
	// The heartbeat must be transmitted, and before all but the packet
	// already in serialization when it arrived.
	pos := -1
	for i, src := range order {
		if src == 999 {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatalf("high-priority packet dropped; order = %v", order)
	}
	if pos > 1 {
		t.Fatalf("high-priority packet at position %d of %v", pos, order)
	}
}

// TestPriorityEviction: when the queue is full of low-priority traffic,
// a high-priority arrival evicts rather than being dropped.
func TestPriorityEviction(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.QueueCapacity = 2
	cfg.PortBandwidth = 1e8 // very slow: queue stays full
	sw, _ := New(s, testProgram(t), cfg)
	sw.AddEntry("forward", Entry{Keys: []KeySpec{ExactKey(1)}, Action: "set_egress", Data: []uint64{2}})
	var got []uint64
	sw.Tx = func(_ int, pkt *packet.Packet) { got = append(got, pkt.GetName("ipv4.srcAddr")) }
	for i := 0; i < 3; i++ {
		sw.Inject(0, mkPacket(sw, 1, uint64(i), 1500))
	}
	hb := mkPacket(sw, 1, 777, 64)
	hb.Priority = 7
	sw.Inject(0, hb)
	s.Run()
	found := false
	for _, src := range got {
		if src == 777 {
			found = true
		}
	}
	if !found {
		t.Fatalf("priority packet lost; delivered %v", got)
	}
}

// TestStaticMaskMatching: a masked read column matches on the masked
// portion of the field only.
func TestStaticMaskMatching(t *testing.T) {
	prog := p4.NewProgram("mask")
	prog.DefineStandardMetadata()
	f := prog.Schema.Define("h.x", 32)
	egr := prog.Schema.MustID(p4.FieldEgressSpec)
	prog.AddAction(&p4.Action{
		Name:   "fwd",
		Params: []p4.Param{{Name: "port", Width: 16}},
		Body:   []p4.Primitive{p4.ModifyField{Dst: egr, DstName: p4.FieldEgressSpec, Src: p4.ParamOp(0, "port")}},
	})
	prog.AddTable(&p4.Table{
		Name:        "t",
		Keys:        []p4.MatchKey{{FieldName: "h.x", Field: f, Width: 32, Kind: p4.MatchExact, StaticMask: 0xFF}},
		ActionNames: []string{"fwd"},
		Size:        8,
	})
	prog.Ingress = []p4.ControlStmt{p4.Apply{Table: "t"}}
	s := sim.New(1)
	sw, err := New(s, prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sw.AddEntry("t", Entry{Keys: []KeySpec{ExactKey(0x42)}, Action: "fwd", Data: []uint64{3}})
	var gotPort = -1
	sw.Tx = func(p int, _ *packet.Packet) { gotPort = p }
	pkt := prog.Schema.New()
	pkt.Size = 64
	pkt.SetName("h.x", 0xABCD0042) // upper bits differ; masked low byte matches
	sw.Inject(0, pkt)
	s.Run()
	if gotPort != 3 {
		t.Fatalf("masked match failed: port = %d", gotPort)
	}
}
