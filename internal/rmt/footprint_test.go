package rmt

import "testing"

// TestFootprintsTrackOccupancy pins the live-occupancy resource view:
// empty tables charge one entry's width, installed entries grow the
// footprint, and Occupancy mirrors the handle count.
func TestFootprintsTrackOccupancy(t *testing.T) {
	_, sw := newTestSwitch(t)

	occ := sw.Occupancy()
	if occ["forward"] != 0 {
		t.Fatalf("fresh switch occupancy = %d, want 0", occ["forward"])
	}
	fp := sw.Footprints()
	empty := fp["forward"]
	if empty.Capacity != 1 || empty.SRAMBits <= 0 {
		t.Fatalf("empty forward footprint = %+v, want capacity 1 with SRAM bits", empty)
	}
	if acl := fp["acl"]; acl.TCAMBits <= 0 {
		t.Fatalf("ternary acl footprint has no TCAM bits: %+v", acl)
	}

	for i := 0; i < 3; i++ {
		if _, err := sw.AddEntry("forward", Entry{
			Keys:   []KeySpec{ExactKey(uint64(10 + i))},
			Action: "set_egress",
			Data:   []uint64{1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sw.Occupancy()["forward"]; got != 3 {
		t.Fatalf("occupancy after 3 adds = %d", got)
	}
	grown := sw.Footprints()["forward"]
	if grown.Capacity != 3 || grown.SRAMBits != 3*empty.SRAMBits {
		t.Fatalf("footprint did not scale with occupancy: %+v vs empty %+v", grown, empty)
	}
}
