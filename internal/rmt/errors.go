package rmt

import "errors"

// Typed sentinel errors for control-plane operations. Every error the
// switch's control-plane access points return wraps one of these, so
// callers (the driver, the agent's retry layer) can classify failures
// with errors.Is instead of string matching. All of them are *fatal*
// programming or capacity errors: retrying the same operation cannot
// succeed. Transient channel failures are modeled one layer up, in
// internal/driver and internal/faults.
var (
	// ErrUnknownTable reports an operation against a table name not in
	// the loaded program.
	ErrUnknownTable = errors.New("unknown table")
	// ErrUnknownRegister reports an access to an undeclared register.
	ErrUnknownRegister = errors.New("unknown register")
	// ErrUnknownHash reports a seed update for an undeclared hash
	// calculation.
	ErrUnknownHash = errors.New("unknown hash calculation")
	// ErrUnknownEntry reports a modify/delete of a handle that is not
	// installed (never was, or already deleted).
	ErrUnknownEntry = errors.New("unknown entry handle")
	// ErrUnknownAction reports an action not allowed on the table or not
	// defined in the program.
	ErrUnknownAction = errors.New("unknown or disallowed action")
	// ErrBadEntry reports a malformed entry (wrong key column count,
	// wrong action-data arity).
	ErrBadEntry = errors.New("malformed entry")
	// ErrTableFull reports an add against a table at capacity.
	ErrTableFull = errors.New("table full")
	// ErrDuplicateEntry reports an exact-match add whose key is already
	// installed (hardware drivers reject these).
	ErrDuplicateEntry = errors.New("duplicate exact entry")
	// ErrRegRange reports a register index or range outside the array.
	ErrRegRange = errors.New("register index out of range")
)
