package usecases

import (
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rl"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// RLECNP4R is use case #4's program: the DCTCP ECN marking threshold
// is a malleable value compared against queue depth in the egress
// pipeline; queue depth and a byte counter are polled as the RL state.
const RLECNP4R = `
header_type ipv4_t {
  fields { srcAddr : 32; dstAddr : 32; protocol : 8; ecn : 1; }
}
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; ack : 32; isAck : 1; } }
header tcp_t tcp;

register q_sample { width : 32; instance_count : 1; }
register tx_bytes { width : 64; instance_count : 1; }

malleable value ecn_thresh { width : 16; init : 64; }

action route_pkt(port) {
  modify_field(standard_metadata.egress_spec, port);
}
action drop_pkt() { drop(); }
action mark_ecn() {
  modify_field(ipv4.ecn, 1);
}
action sample_q() {
  register_write(q_sample, 0, standard_metadata.enq_qdepth);
  register_increment(tx_bytes, 0, standard_metadata.packet_length);
}

table route {
  reads { ipv4.dstAddr : exact; }
  actions { route_pkt; drop_pkt; }
  default_action : drop_pkt;
  size : 64;
}
table marker {
  actions { mark_ecn; }
  default_action : mark_ecn;
  size : 1;
}
table sampler {
  actions { sample_q; }
  default_action : sample_q;
  size : 1;
}

reaction rl_react(reg q_sample, reg tx_bytes) {
  // Implemented natively: off-policy Q-learning over the threshold.
}

control ingress {
  apply(route);
}
control egress {
  if (standard_metadata.enq_qdepth > ${ecn_thresh}) {
    apply(marker);
  }
  apply(sampler);
}
`

// RLTuner is the native reaction body of use case #4: ε-greedy
// Q-learning over discretized queue depth, with actions that move the
// ECN threshold and a reward of throughput minus a queue penalty
// (maximizing "the sum of the utilization ... with the inverse of
// queue length").
type RLTuner struct {
	Learner *rl.QLearner
	// Thresholds is the action space: candidate ECN thresholds.
	Thresholds []uint64
	// Beta weights the queue-length penalty against utilization.
	Beta float64
	// LinkBps normalizes the throughput term.
	LinkBps float64

	lastTx    uint64
	lastTime  sim.Time
	lastState int
	lastAct   int
	primed    bool

	// RewardHistory records the per-step rewards (for convergence
	// checks); ThresholdHistory the chosen thresholds.
	RewardHistory    []float64
	ThresholdHistory []uint64
}

// qdepth buckets: 0, 1-2, 3-7, 8-15, 16-31, 32-63, 64-127, 128+
func depthState(q uint64) int {
	switch {
	case q == 0:
		return 0
	case q <= 2:
		return 1
	case q <= 7:
		return 2
	case q <= 15:
		return 3
	case q <= 31:
		return 4
	case q <= 63:
		return 5
	case q <= 127:
		return 6
	default:
		return 7
	}
}

// NewRLTuner builds the tuner.
func NewRLTuner(linkBps float64, seed int64) (*RLTuner, error) {
	thresholds := []uint64{2, 4, 8, 16, 32, 64, 128}
	cfg := rl.DefaultConfig(8, len(thresholds))
	cfg.Seed = seed
	l, err := rl.New(cfg)
	if err != nil {
		return nil, err
	}
	return &RLTuner{Learner: l, Thresholds: thresholds, Beta: 0.5, LinkBps: linkBps}, nil
}

// React is the reaction body (registered for "rl_react").
func (r *RLTuner) React(ctx *core.Ctx) error {
	q := ctx.Reg("q_sample")[0]
	tx := ctx.Reg("tx_bytes")[0]
	now := ctx.Now()
	state := depthState(q)
	if !r.primed {
		r.primed = true
		r.lastTx, r.lastTime, r.lastState = tx, now, state
		r.lastAct = r.Learner.Act(state)
		return ctx.SetMbl("ecn_thresh", r.Thresholds[r.lastAct])
	}
	elapsed := now.Sub(r.lastTime).Seconds()
	if elapsed <= 0 {
		return nil
	}
	util := float64((tx-r.lastTx)*8) / elapsed / r.LinkBps
	if util > 1 {
		util = 1
	}
	// Reward: utilization plus inverse queue pressure.
	reward := util - r.Beta*float64(depthState(q))/8.0
	r.RewardHistory = append(r.RewardHistory, reward)
	r.Learner.Update(r.lastState, r.lastAct, reward, state)

	act := r.Learner.Act(state)
	r.lastState, r.lastAct = state, act
	r.lastTx, r.lastTime = tx, now
	r.ThresholdHistory = append(r.ThresholdHistory, r.Thresholds[act])
	return ctx.SetMbl("ecn_thresh", r.Thresholds[act])
}

// RLRig is a ready-to-run use case #4 deployment.
type RLRig struct {
	Sim   *sim.Simulator
	Sw    *rmt.Switch
	Drv   *driver.Driver
	Plan  *compiler.Plan
	Agent *core.Agent
	Net   *netsim.Network
	Tuner *RLTuner
}

// BuildRL compiles and wires use case #4 with the given dialogue
// pacing and bottleneck rate on port 1.
func BuildRL(seed int64, td time.Duration, bottleneckBps float64) (*RLRig, error) {
	plan, err := compiler.CompileSource(RLECNP4R, compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s := sim.New(seed)
	cfg := rmt.DefaultConfig()
	cfg.QueueCapacity = 256
	sw, err := rmt.New(s, plan.Prog, cfg)
	if err != nil {
		return nil, err
	}
	sw.SetPortBandwidth(1, bottleneckBps)
	drv := driver.New(s, sw, driver.DefaultCostModel())
	tuner, err := NewRLTuner(bottleneckBps, seed)
	if err != nil {
		return nil, err
	}
	agent := core.NewAgent(s, drv, plan, core.Options{
		Pacing: td,
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			routes := map[uint64]uint64{2: 1, 1: 0}
			for dst, port := range routes {
				if _, err := drv.AddEntry(p, "route", rmt.Entry{
					Keys: []rmt.KeySpec{rmt.ExactKey(dst)}, Action: "route_pkt", Data: []uint64{port},
				}); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err := agent.RegisterNativeReaction("rl_react", tuner.React); err != nil {
		return nil, err
	}
	net := netsim.New(s, sw, 25e9, 5*time.Microsecond)
	return &RLRig{Sim: s, Sw: sw, Drv: drv, Plan: plan, Agent: agent, Net: net, Tuner: tuner}, nil
}

// RLResult summarizes an RL tuning run.
type RLResult struct {
	// EarlyReward and LateReward are mean rewards over the first and
	// last quarter of the run: learning should not degrade them.
	EarlyReward float64
	LateReward  float64
	// Updates counts TD updates.
	Updates uint64
	// FinalGreedyThreshold is the learned threshold at the most common
	// late state.
	FinalGreedyThreshold uint64
	// DeliveredBytes is the DCTCP flow's goodput.
	DeliveredBytes uint64
}

// RunRL drives a DCTCP flow through the tuned bottleneck and reports
// the learning outcome.
func RunRL(seed int64, duration time.Duration) (*RLResult, error) {
	rig, err := BuildRL(seed, 50*time.Microsecond, 1e9)
	if err != nil {
		return nil, err
	}
	a := rig.Net.AddHost(0, 1)
	b := rig.Net.AddHost(1, 2)
	wire := func(h *netsim.Host) {
		h.Rx = func(pkt *packet.Packet) {
			if f, ok := pkt.Payload.(*netsim.TCPFlow); ok {
				f.HandlePacket(pkt, h)
			}
		}
	}
	wire(a)
	wire(b)
	tcfg := netsim.DefaultTCPConfig()
	tcfg.DCTCP = true
	flow := netsim.NewTCPFlow(a, rig.Plan.Prog.Schema, FM, 2, tcfg)
	rig.Agent.Start()
	flow.Start()
	rig.Sim.RunFor(duration)
	rig.Agent.Stop()
	rig.Sim.RunFor(time.Millisecond)
	if err := rig.Agent.Err(); err != nil {
		return nil, err
	}
	res := &RLResult{
		Updates:        rig.Tuner.Learner.Updates,
		DeliveredBytes: flow.DeliveredBytes,
	}
	hist := rig.Tuner.RewardHistory
	if len(hist) >= 8 {
		q := len(hist) / 4
		var early, late float64
		for _, r := range hist[:q] {
			early += r
		}
		for _, r := range hist[len(hist)-q:] {
			late += r
		}
		res.EarlyReward = early / float64(q)
		res.LateReward = late / float64(q)
	}
	// Greedy threshold for a mid-pressure state.
	res.FinalGreedyThreshold = rig.Tuner.Thresholds[rig.Tuner.Learner.Best(depthState(16))]
	return res, nil
}
