package usecases

import (
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/netsim"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// HashPolarP4R is use case #3's program: the ECMP hash input is a
// malleable field (per the paper, the 5-tuple inputs become malleable
// references that a reaction can shift). The carrier-loading
// optimization of §4.1 keeps the field list from exploding. Egress
// packet counts per port feed the MAD imbalance detector.
const HashPolarP4R = `
header_type ipv4_t {
  fields { srcAddr : 32; dstAddr : 32; protocol : 8; ecn : 1; }
}
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; ack : 32; isAck : 1; } }
header tcp_t tcp;
header_type meta_t { fields { ecmp : 16; } }
metadata meta_t meta;

register egr_pkts { width : 32; instance_count : 32; }

malleable field hash_in {
  width : 32; init : ipv4.dstAddr;
  alts { ipv4.dstAddr, ipv4.srcAddr }
}

field_list ecmp_fl { ${hash_in}; ipv4.protocol; }
field_list_calculation ecmp_hash {
  input { ecmp_fl; }
  algorithm : crc16;
  output_width : 16;
}

action pick_path() {
  modify_field_with_hash_based_offset(meta.ecmp, 0, ecmp_hash, 4);
}
action set_egress(port) {
  modify_field(standard_metadata.egress_spec, port);
}
action count_egr() {
  register_increment(egr_pkts, standard_metadata.egress_port, 1);
}

table ecmp_pick {
  actions { pick_path; }
  default_action : pick_path;
  size : 1;
}
table ecmp_sel {
  reads { meta.ecmp : exact; }
  actions { set_egress; }
  size : 8;
}
table egr_counter {
  actions { count_egr; }
  default_action : count_egr;
  size : 1;
}

reaction polar_react(reg egr_pkts) {
  // Implemented natively: MAD-based imbalance detection + input shift.
}

control ingress {
  apply(ecmp_pick);
  apply(ecmp_sel);
}
control egress {
  apply(egr_counter);
}
`

// PolarConfig tunes the imbalance detector.
type PolarConfig struct {
	// Paths lists the ECMP egress ports.
	Paths []int
	// MADRatio triggers a shift when MAD/mean of per-port deltas exceeds
	// it for Persist consecutive windows.
	MADRatio float64
	Persist  int
}

// DefaultPolarConfig watches 4 paths.
func DefaultPolarConfig() PolarConfig {
	return PolarConfig{Paths: []int{1, 2, 3, 4}, MADRatio: 0.5, Persist: 3}
}

// PolarDetector is the native reaction body of use case #3.
type PolarDetector struct {
	cfg        PolarConfig
	lastCounts []uint64
	strikes    int
	altCount   int
	currentAlt uint64

	// ShiftedAt records hash reconfiguration times.
	ShiftedAt []sim.Time
	// MADHistory records the observed imbalance metric per window.
	MADHistory []float64
}

// NewPolarDetector builds the detector. altCount is the malleable
// field's alternative count.
func NewPolarDetector(cfg PolarConfig, altCount int) *PolarDetector {
	return &PolarDetector{cfg: cfg, lastCounts: make([]uint64, 32), altCount: altCount}
}

// React is the reaction body (registered for "polar_react").
func (d *PolarDetector) React(ctx *core.Ctx) error {
	counts := ctx.Reg("egr_pkts")
	deltas := make([]float64, len(d.cfg.Paths))
	total := 0.0
	for i, port := range d.cfg.Paths {
		deltas[i] = float64(counts[port] - d.lastCounts[port])
		d.lastCounts[port] = counts[port]
		total += deltas[i]
	}
	if total == 0 {
		return nil
	}
	// Deviation of port loads from their median, normalized by the mean
	// load. The mean-absolute variant is used because polarization onto
	// a minority of paths is an outlier pattern that the
	// median-of-deviations MAD is (by design) blind to.
	mad := stats.MeanAbsDevFromMedian(deltas)
	mean := total / float64(len(deltas))
	ratio := mad / mean
	d.MADHistory = append(d.MADHistory, ratio)
	if ratio <= d.cfg.MADRatio {
		d.strikes = 0
		return nil
	}
	d.strikes++
	if d.strikes < d.cfg.Persist {
		return nil
	}
	// Persistent imbalance: shift the hash input to the next alternative
	// (wrapping), per §8.3.3.
	d.strikes = 0
	d.currentAlt = (d.currentAlt + 1) % uint64(d.altCount)
	if err := ctx.SetMbl("hash_in", d.currentAlt); err != nil {
		return err
	}
	d.ShiftedAt = append(d.ShiftedAt, ctx.Now())
	return nil
}

// PolarRig is a ready-to-run use case #3 deployment.
type PolarRig struct {
	Sim      *sim.Simulator
	Sw       *rmt.Switch
	Drv      *driver.Driver
	Plan     *compiler.Plan
	Agent    *core.Agent
	Detector *PolarDetector
}

// BuildPolar compiles and wires use case #3: ECMP over cfg.Paths with a
// malleable hash input, dialogue period td.
func BuildPolar(seed int64, cfg PolarConfig, td time.Duration) (*PolarRig, error) {
	plan, err := compiler.CompileSource(HashPolarP4R, compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s := sim.New(seed)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		return nil, err
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	det := NewPolarDetector(cfg, len(plan.MblFields["hash_in"].Alts))
	agent := core.NewAgent(s, drv, plan, core.Options{
		Pacing: td,
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			for i, port := range cfg.Paths {
				if _, err := drv.AddEntry(p, "ecmp_sel", rmt.Entry{
					Keys: []rmt.KeySpec{rmt.ExactKey(uint64(i))}, Action: "set_egress", Data: []uint64{uint64(port)},
				}); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err := agent.RegisterNativeReaction("polar_react", det.React); err != nil {
		return nil, err
	}
	return &PolarRig{Sim: s, Sw: sw, Drv: drv, Plan: plan, Agent: agent, Detector: det}, nil
}

// PolarResult summarizes a hash-polarization run.
type PolarResult struct {
	// Shifted reports whether the reaction reconfigured the hash.
	Shifted bool
	// ShiftAt is the first reconfiguration time.
	ShiftAt sim.Time
	// MADBefore/MADAfter are the mean imbalance ratios before and after
	// the first shift.
	MADBefore float64
	MADAfter  float64
	// PortShares are final per-path traffic shares.
	PortShares []float64
}

// RunPolar drives a polarizing workload (every flow shares the initial
// hash-input value) through the ECMP group and reports whether the
// reaction de-polarized it.
func RunPolar(seed int64, td time.Duration, duration time.Duration) (*PolarResult, error) {
	cfg := DefaultPolarConfig()
	rig, err := BuildPolar(seed, cfg, td)
	if err != nil {
		return nil, err
	}
	schema := rig.Plan.Prog.Schema
	rng := rig.Sim.Rand()
	// Polarizing workload: a single destination (the initial hash
	// input), many sources (the alternative input).
	tick := rig.Sim.Every(300*time.Nanosecond, func() {
		pkt := schema.New()
		pkt.Size = 256
		pkt.SetName("ipv4.dstAddr", 0xC0A80001)
		pkt.SetName("ipv4.srcAddr", uint64(0x0A000000+rng.Intn(4096)))
		pkt.SetName("ipv4.protocol", netsim.ProtoTCP)
		rig.Sw.Inject(0, pkt)
	})
	rig.Agent.Start()
	rig.Sim.RunFor(duration)
	tick.Stop()
	rig.Agent.Stop()
	rig.Sim.RunFor(time.Millisecond)
	if err := rig.Agent.Err(); err != nil {
		return nil, err
	}

	res := &PolarResult{}
	det := rig.Detector
	if len(det.ShiftedAt) > 0 {
		res.Shifted = true
		res.ShiftAt = det.ShiftedAt[0]
	}
	// Split MAD history around the first shift: the first Persist
	// windows (which triggered it) are the polarized "before" phase.
	var before, after []float64
	shiftIdx := len(det.MADHistory)
	if res.Shifted {
		shiftIdx = det.cfg.Persist
	}
	for i, r := range det.MADHistory {
		if i < shiftIdx {
			before = append(before, r)
		} else {
			after = append(after, r)
		}
	}
	res.MADBefore = stats.Mean(before)
	res.MADAfter = stats.Mean(after)
	var totalPkts float64
	counts := make([]float64, len(cfg.Paths))
	for i, port := range cfg.Paths {
		v, _ := rig.Sw.RegRead("egr_pkts", uint64(port))
		counts[i] = float64(v)
		totalPkts += counts[i]
	}
	for _, c := range counts {
		res.PortShares = append(res.PortShares, c/totalPkts)
	}
	return res, nil
}
