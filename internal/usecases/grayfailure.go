package usecases

import (
	"fmt"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/netsim"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// GrayP4R is use case #2's program: heartbeat packets (protocol 0xFD)
// are counted per ingress port and absorbed; routed traffic flows
// through a malleable route table that the reaction rewrites on
// detection.
const GrayP4R = `
header_type ipv4_t {
  fields { srcAddr : 32; dstAddr : 32; protocol : 8; ecn : 1; }
}
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; ack : 32; isAck : 1; } }
header tcp_t tcp;

register hb_count { width : 32; instance_count : 32; }

action count_hb() {
  register_increment(hb_count, standard_metadata.ingress_port, 1);
  drop();
}
action route_pkt(port) {
  modify_field(standard_metadata.egress_spec, port);
}
action drop_pkt() { drop(); }

table hb_tbl {
  reads { ipv4.protocol : exact; }
  actions { count_hb; }
  size : 2;
}
malleable table route {
  reads { ipv4.dstAddr : exact; }
  actions { route_pkt; drop_pkt; }
  default_action : drop_pkt;
  size : 64;
}

reaction gray_react(reg hb_count) {
  // Implemented natively: threshold detection + route recomputation.
}

control ingress {
  apply(hb_tbl);
  apply(route);
}
`

// GrayAddressing places the heartbeat sources of the gray-failure
// scenario onto a switch's ports — the use case #2 counterpart of
// DosAddressing, so a fabric can instantiate the detector per-leaf
// with its own address plan instead of copy-pasting the scenario body.
type GrayAddressing struct {
	// NeighborAddr is the heartbeat source address on monitored-port
	// index i.
	NeighborAddr func(i int) uint32
	// HeartbeatDst is the destination stamped on heartbeats — an address
	// the route table never resolves, so heartbeats die in the switch
	// after being counted.
	HeartbeatDst uint32
}

// DefaultGrayAddressing is the single-switch Fig. 16 layout.
func DefaultGrayAddressing() GrayAddressing {
	return GrayAddressing{
		NeighborAddr: func(i int) uint32 { return uint32(0x0A00FF00 + i) },
		HeartbeatDst: 0xFFFFFFFF,
	}
}

func (ad *GrayAddressing) setDefaults() {
	def := DefaultGrayAddressing()
	if ad.NeighborAddr == nil {
		ad.NeighborAddr = def.NeighborAddr
	}
	if ad.HeartbeatDst == 0 {
		ad.HeartbeatDst = def.HeartbeatDst
	}
}

// GrayConfig parameterizes the detector (§8.3.2).
type GrayConfig struct {
	// Ts is the heartbeat generation period at the neighbors.
	Ts time.Duration
	// Eta is the delivery expectation in [0,1]: the threshold is
	// delta = floor(eta * Td/Ts) where Td is the time since the last
	// dialogue.
	Eta float64
	// ConsecutiveStrikes is the number of consecutive below-threshold
	// windows required (paper: 2).
	ConsecutiveStrikes int
	// Monitored lists the ports carrying heartbeats.
	Monitored []int

	// Addr places the heartbeat sources (zero value: the single-switch
	// Fig. 16 constants).
	Addr GrayAddressing

	// Event, when set, is emitted via the agent's event sink at each
	// detection with Key = the failed port; ClearEvent likewise when a
	// failed port recovers. Unset (the Fig. 16 default) emits nothing.
	Event      string
	ClearEvent string
	// RecoverStrikes, when > 0, unlatches a failed port after that many
	// consecutive healthy windows: local routes move back to their
	// primaries and ClearEvent fires. 0 (the Fig. 16 default) latches
	// failures forever.
	RecoverStrikes int
	// HealEta is the delivery expectation a window must meet to count
	// toward recovery (default: Eta). Setting it above Eta gives the
	// latch hysteresis: a 30% gray link clears the detection threshold
	// often enough to flap a symmetric latch, but almost never clears a
	// near-full delivery bar, so heal evidence stays trustworthy.
	HealEta float64
	// MaxTd, when > 0, discards measurement windows longer than MaxTd:
	// a degraded control channel stretches the dialogue (and dedup-
	// cached responses carry counts executed long before the reply is
	// processed), so the count window and the time window no longer
	// line up and the sample says nothing about the link. Counts still
	// roll forward; strike and heal evidence is just not taken from the
	// oversized window. 0 (the Fig. 16 default) judges every window.
	MaxTd time.Duration
	// SkipWindow, when set, is consulted once per dialogue; a true
	// return discards that window's evidence the same way an oversized
	// window is — counts roll forward, no strike or heal is taken. The
	// fabric wires it to "the agent's control channel retransmitted or
	// timed out since the last poll": exactly the windows whose dedup-
	// cached register reads can be stale.
	SkipWindow func() bool
	// Sink, when set, is wired as the BuildGray agent's EventSink so
	// Event/ClearEvent emissions land somewhere observable.
	Sink func(core.Event)
}

// DefaultGrayConfig matches the paper's tests (T_s = 1 µs).
func DefaultGrayConfig(monitored []int) GrayConfig {
	return GrayConfig{Ts: time.Microsecond, Eta: 0.5, ConsecutiveStrikes: 2, Monitored: monitored}
}

// RouteSpec is one destination's primary/backup port pair the detector
// manages.
type RouteSpec struct {
	Dst     uint32
	Primary int
	Backup  int
}

// GrayDetector is the native reaction body of use case #2.
type GrayDetector struct {
	cfg    GrayConfig
	routes []RouteSpec

	lastCounts []uint64
	lastPoll   sim.Time
	strikes    map[int]int
	// seen gates striking: a port is only judged once it has delivered
	// at least one heartbeat, so a neighbor that has not come up yet
	// (fabric prologues finish at different times) is not declared
	// failed before it ever spoke.
	seen    map[int]bool
	heals   map[int]int
	handles map[uint32]core.UserHandle

	// FailedPorts maps detected ports to detection time.
	FailedPorts map[int]sim.Time
	// ReroutedAt is when replacement routes were staged (commit follows
	// within the same iteration).
	ReroutedAt sim.Time
	// RecoveredAt maps ports that healed (RecoverStrikes > 0) to the
	// recovery time of their most recent heal.
	RecoveredAt map[int]sim.Time
}

// NewGrayDetector builds the detector for the given managed routes.
func NewGrayDetector(cfg GrayConfig, routes []RouteSpec) *GrayDetector {
	return &GrayDetector{
		cfg: cfg, routes: routes,
		lastCounts:  make([]uint64, 32),
		strikes:     make(map[int]int),
		seen:        make(map[int]bool),
		heals:       make(map[int]int),
		handles:     make(map[uint32]core.UserHandle),
		FailedPorts: make(map[int]sim.Time),
		RecoveredAt: make(map[int]sim.Time),
	}
}

// InstallRoutes is the prologue hook: installs primary routes through
// the malleable table.
func (g *GrayDetector) InstallRoutes(p *sim.Proc, a *core.Agent) error {
	tbl, err := a.Table("route")
	if err != nil {
		return err
	}
	for _, r := range g.routes {
		h, err := tbl.AddEntry(p, core.UserEntry{
			Keys: []rmt.KeySpec{rmt.ExactKey(uint64(r.Dst))}, Action: "route_pkt", Data: []uint64{uint64(r.Primary)},
		})
		if err != nil {
			return err
		}
		g.handles[r.Dst] = h
	}
	return nil
}

// React is the reaction body (registered for "gray_react").
func (g *GrayDetector) React(ctx *core.Ctx) error {
	counts := ctx.Reg("hb_count")
	now := ctx.Now()
	if g.lastPoll == 0 {
		g.lastPoll = now
		copy(g.lastCounts, counts)
		return nil
	}
	td := now.Sub(g.lastPoll)
	g.lastPoll = now
	// delta = floor(eta * Td / Ts), the expected-heartbeat threshold.
	expected := uint64(g.cfg.Eta * float64(td) / float64(g.cfg.Ts))
	healEta := g.cfg.HealEta
	if healEta <= 0 {
		healEta = g.cfg.Eta
	}
	healExpected := uint64(healEta * float64(td) / float64(g.cfg.Ts))
	measurable := g.cfg.MaxTd <= 0 || td <= g.cfg.MaxTd
	// SkipWindow runs every window regardless, so delta-based hooks keep
	// their baseline current.
	if g.cfg.SkipWindow != nil && g.cfg.SkipWindow() {
		measurable = false
	}
	for _, port := range g.cfg.Monitored {
		got := counts[port] - g.lastCounts[port]
		g.lastCounts[port] = counts[port]
		if got > 0 {
			g.seen[port] = true
		}
		if !measurable {
			continue
		}
		if _, failed := g.FailedPorts[port]; failed {
			if g.cfg.RecoverStrikes <= 0 {
				continue
			}
			// Heal watch: enough consecutive healthy windows unlatch.
			if got >= healExpected && healExpected > 0 {
				g.heals[port]++
			} else {
				g.heals[port] = 0
			}
			if g.heals[port] < g.cfg.RecoverStrikes {
				continue
			}
			delete(g.FailedPorts, port)
			g.heals[port] = 0
			g.strikes[port] = 0
			g.RecoveredAt[port] = now
			if err := g.restore(ctx, port); err != nil {
				return err
			}
			if g.cfg.ClearEvent != "" {
				ctx.Emit(g.cfg.ClearEvent, uint64(port), got)
			}
			continue
		}
		if !g.seen[port] {
			continue
		}
		if got < expected {
			g.strikes[port]++
		} else {
			g.strikes[port] = 0
		}
		if g.strikes[port] < g.cfg.ConsecutiveStrikes {
			continue
		}
		g.FailedPorts[port] = now
		g.heals[port] = 0
		if err := g.reroute(ctx, port); err != nil {
			return err
		}
		if g.cfg.Event != "" {
			ctx.Emit(g.cfg.Event, uint64(port), got)
		}
	}
	return nil
}

// reroute recomputes routes away from a failed port: every destination
// whose primary is the failed port moves to its backup. With no managed
// routes (fabric leaves delegate rerouting to the coordinator) only the
// detection timestamp is taken.
func (g *GrayDetector) reroute(ctx *core.Ctx, failed int) error {
	if len(g.routes) == 0 {
		g.ReroutedAt = ctx.Now()
		return nil
	}
	tbl, err := ctx.Table("route")
	if err != nil {
		return err
	}
	for _, r := range g.routes {
		if r.Primary != failed {
			continue
		}
		if err := tbl.ModifyEntry(g.handles[r.Dst], "route_pkt", []uint64{uint64(r.Backup)}); err != nil {
			return fmt.Errorf("gray: reroute %#x: %w", r.Dst, err)
		}
	}
	g.ReroutedAt = ctx.Now()
	return nil
}

// restore moves destinations whose primary was the healed port back
// from their backups.
func (g *GrayDetector) restore(ctx *core.Ctx, healed int) error {
	if len(g.routes) == 0 {
		return nil
	}
	tbl, err := ctx.Table("route")
	if err != nil {
		return err
	}
	for _, r := range g.routes {
		if r.Primary != healed {
			continue
		}
		if err := tbl.ModifyEntry(g.handles[r.Dst], "route_pkt", []uint64{uint64(r.Primary)}); err != nil {
			return fmt.Errorf("gray: restore %#x: %w", r.Dst, err)
		}
	}
	return nil
}

// GrayRig is a ready-to-run use case #2 deployment.
type GrayRig struct {
	Sim      *sim.Simulator
	Sw       *rmt.Switch
	Drv      *driver.Driver
	Plan     *compiler.Plan
	Agent    *core.Agent
	Net      *netsim.Network
	Detector *GrayDetector
	// Heartbeaters by port.
	Heartbeaters map[int]*netsim.Heartbeater
}

// BuildGray compiles and wires use case #2: heartbeaters on the
// monitored ports, managed routes, and the detection reaction. td sets
// the dialogue pacing (the measurement window T_d).
func BuildGray(seed int64, cfg GrayConfig, routes []RouteSpec, td time.Duration) (*GrayRig, error) {
	cfg.Addr.setDefaults()
	plan, err := compiler.CompileSource(GrayP4R, compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s := sim.New(seed)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		return nil, err
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	det := NewGrayDetector(cfg, routes)
	agent := core.NewAgent(s, drv, plan, core.Options{
		Pacing:    td,
		EventSink: cfg.Sink,
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			// Heartbeats: protocol 0xFD hits hb_tbl.
			if _, err := drv.AddEntry(p, "hb_tbl", rmt.Entry{
				Keys: []rmt.KeySpec{rmt.ExactKey(0xFD)}, Action: "count_hb",
			}); err != nil {
				return err
			}
			return det.InstallRoutes(p, a)
		},
	})
	if err := agent.RegisterNativeReaction("gray_react", det.React); err != nil {
		return nil, err
	}
	net := netsim.New(s, sw, 25e9, time.Microsecond)
	rig := &GrayRig{
		Sim: s, Sw: sw, Drv: drv, Plan: plan, Agent: agent, Net: net,
		Detector: det, Heartbeaters: make(map[int]*netsim.Heartbeater),
	}
	for i, port := range cfg.Monitored {
		h := net.AddHost(port, cfg.Addr.NeighborAddr(i))
		hb := netsim.NewHeartbeater(h, plan.Prog.Schema, FM, cfg.Addr.HeartbeatDst, cfg.Ts)
		rig.Heartbeaters[port] = hb
	}
	return rig, nil
}

// Fig16Result is one gray-failure experiment outcome.
type Fig16Result struct {
	// FailAt is when the heartbeat source went silent.
	FailAt sim.Time
	// ReroutedAt is when the reaction staged replacement routes.
	ReroutedAt sim.Time
	// ReactionTime = ReroutedAt - FailAt (the Fig. 16 y-axis).
	ReactionTime time.Duration
	// Detected reports whether the failure was caught at all.
	Detected bool
	// FalsePositives counts healthy ports declared failed.
	FalsePositives int
}

// RunFig16 runs one gray-failure detection experiment: heartbeaters on
// `ports`, a gray failure on failPort at failAt, dialogue period td,
// expectation eta.
func RunFig16(seed int64, ports []int, failPort int, failAt time.Duration, td time.Duration, eta float64) (*Fig16Result, error) {
	cfg := DefaultGrayConfig(ports)
	cfg.Eta = eta
	var routes []RouteSpec
	for i, p := range ports {
		routes = append(routes, RouteSpec{Dst: uint32(0xC0A80000 + i), Primary: p, Backup: 31})
	}
	rig, err := BuildGray(seed, cfg, routes, td)
	if err != nil {
		return nil, err
	}
	for _, hb := range rig.Heartbeaters {
		hb.Start()
	}
	rig.Agent.Start()
	rig.Sim.RunFor(failAt)
	res := &Fig16Result{FailAt: rig.Sim.Now()}
	rig.Heartbeaters[failPort].Enabled = false
	// Run long enough for detection at any plausible Td.
	rig.Sim.RunFor(20*td + 5*time.Millisecond)
	rig.Agent.Stop()
	rig.Sim.RunFor(time.Millisecond)
	if err := rig.Agent.Err(); err != nil {
		return nil, err
	}
	if _, ok := rig.Detector.FailedPorts[failPort]; ok {
		res.Detected = true
		res.ReroutedAt = rig.Detector.ReroutedAt
		res.ReactionTime = res.ReroutedAt.Sub(res.FailAt)
	}
	for p := range rig.Detector.FailedPorts {
		if p != failPort {
			res.FalsePositives++
		}
	}
	return res, nil
}
