package usecases

import (
	"fmt"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/netsim"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// GrayP4R is use case #2's program: heartbeat packets (protocol 0xFD)
// are counted per ingress port and absorbed; routed traffic flows
// through a malleable route table that the reaction rewrites on
// detection.
const GrayP4R = `
header_type ipv4_t {
  fields { srcAddr : 32; dstAddr : 32; protocol : 8; ecn : 1; }
}
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; ack : 32; isAck : 1; } }
header tcp_t tcp;

register hb_count { width : 32; instance_count : 32; }

action count_hb() {
  register_increment(hb_count, standard_metadata.ingress_port, 1);
  drop();
}
action route_pkt(port) {
  modify_field(standard_metadata.egress_spec, port);
}
action drop_pkt() { drop(); }

table hb_tbl {
  reads { ipv4.protocol : exact; }
  actions { count_hb; }
  size : 2;
}
malleable table route {
  reads { ipv4.dstAddr : exact; }
  actions { route_pkt; drop_pkt; }
  default_action : drop_pkt;
  size : 64;
}

reaction gray_react(reg hb_count) {
  // Implemented natively: threshold detection + route recomputation.
}

control ingress {
  apply(hb_tbl);
  apply(route);
}
`

// GrayConfig parameterizes the detector (§8.3.2).
type GrayConfig struct {
	// Ts is the heartbeat generation period at the neighbors.
	Ts time.Duration
	// Eta is the delivery expectation in [0,1]: the threshold is
	// delta = floor(eta * Td/Ts) where Td is the time since the last
	// dialogue.
	Eta float64
	// ConsecutiveStrikes is the number of consecutive below-threshold
	// windows required (paper: 2).
	ConsecutiveStrikes int
	// Monitored lists the ports carrying heartbeats.
	Monitored []int
}

// DefaultGrayConfig matches the paper's tests (T_s = 1 µs).
func DefaultGrayConfig(monitored []int) GrayConfig {
	return GrayConfig{Ts: time.Microsecond, Eta: 0.5, ConsecutiveStrikes: 2, Monitored: monitored}
}

// RouteSpec is one destination's primary/backup port pair the detector
// manages.
type RouteSpec struct {
	Dst     uint32
	Primary int
	Backup  int
}

// GrayDetector is the native reaction body of use case #2.
type GrayDetector struct {
	cfg    GrayConfig
	routes []RouteSpec

	lastCounts []uint64
	lastPoll   sim.Time
	strikes    map[int]int
	handles    map[uint32]core.UserHandle

	// FailedPorts maps detected ports to detection time.
	FailedPorts map[int]sim.Time
	// ReroutedAt is when replacement routes were staged (commit follows
	// within the same iteration).
	ReroutedAt sim.Time
}

// NewGrayDetector builds the detector for the given managed routes.
func NewGrayDetector(cfg GrayConfig, routes []RouteSpec) *GrayDetector {
	return &GrayDetector{
		cfg: cfg, routes: routes,
		lastCounts:  make([]uint64, 32),
		strikes:     make(map[int]int),
		handles:     make(map[uint32]core.UserHandle),
		FailedPorts: make(map[int]sim.Time),
	}
}

// InstallRoutes is the prologue hook: installs primary routes through
// the malleable table.
func (g *GrayDetector) InstallRoutes(p *sim.Proc, a *core.Agent) error {
	tbl, err := a.Table("route")
	if err != nil {
		return err
	}
	for _, r := range g.routes {
		h, err := tbl.AddEntry(p, core.UserEntry{
			Keys: []rmt.KeySpec{rmt.ExactKey(uint64(r.Dst))}, Action: "route_pkt", Data: []uint64{uint64(r.Primary)},
		})
		if err != nil {
			return err
		}
		g.handles[r.Dst] = h
	}
	return nil
}

// React is the reaction body (registered for "gray_react").
func (g *GrayDetector) React(ctx *core.Ctx) error {
	counts := ctx.Reg("hb_count")
	now := ctx.Now()
	if g.lastPoll == 0 {
		g.lastPoll = now
		copy(g.lastCounts, counts)
		return nil
	}
	td := now.Sub(g.lastPoll)
	g.lastPoll = now
	// delta = floor(eta * Td / Ts), the expected-heartbeat threshold.
	expected := uint64(g.cfg.Eta * float64(td) / float64(g.cfg.Ts))
	for _, port := range g.cfg.Monitored {
		if _, failed := g.FailedPorts[port]; failed {
			continue
		}
		got := counts[port] - g.lastCounts[port]
		g.lastCounts[port] = counts[port]
		if got < expected {
			g.strikes[port]++
		} else {
			g.strikes[port] = 0
		}
		if g.strikes[port] < g.cfg.ConsecutiveStrikes {
			continue
		}
		g.FailedPorts[port] = now
		if err := g.reroute(ctx, port); err != nil {
			return err
		}
	}
	return nil
}

// reroute recomputes routes away from a failed port: every destination
// whose primary is the failed port moves to its backup.
func (g *GrayDetector) reroute(ctx *core.Ctx, failed int) error {
	tbl, err := ctx.Table("route")
	if err != nil {
		return err
	}
	for _, r := range g.routes {
		if r.Primary != failed {
			continue
		}
		if err := tbl.ModifyEntry(g.handles[r.Dst], "route_pkt", []uint64{uint64(r.Backup)}); err != nil {
			return fmt.Errorf("gray: reroute %#x: %w", r.Dst, err)
		}
	}
	g.ReroutedAt = ctx.Now()
	return nil
}

// GrayRig is a ready-to-run use case #2 deployment.
type GrayRig struct {
	Sim      *sim.Simulator
	Sw       *rmt.Switch
	Drv      *driver.Driver
	Plan     *compiler.Plan
	Agent    *core.Agent
	Net      *netsim.Network
	Detector *GrayDetector
	// Heartbeaters by port.
	Heartbeaters map[int]*netsim.Heartbeater
}

// BuildGray compiles and wires use case #2: heartbeaters on the
// monitored ports, managed routes, and the detection reaction. td sets
// the dialogue pacing (the measurement window T_d).
func BuildGray(seed int64, cfg GrayConfig, routes []RouteSpec, td time.Duration) (*GrayRig, error) {
	plan, err := compiler.CompileSource(GrayP4R, compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s := sim.New(seed)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		return nil, err
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	det := NewGrayDetector(cfg, routes)
	agent := core.NewAgent(s, drv, plan, core.Options{
		Pacing: td,
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			// Heartbeats: protocol 0xFD hits hb_tbl.
			if _, err := drv.AddEntry(p, "hb_tbl", rmt.Entry{
				Keys: []rmt.KeySpec{rmt.ExactKey(0xFD)}, Action: "count_hb",
			}); err != nil {
				return err
			}
			return det.InstallRoutes(p, a)
		},
	})
	if err := agent.RegisterNativeReaction("gray_react", det.React); err != nil {
		return nil, err
	}
	net := netsim.New(s, sw, 25e9, time.Microsecond)
	rig := &GrayRig{
		Sim: s, Sw: sw, Drv: drv, Plan: plan, Agent: agent, Net: net,
		Detector: det, Heartbeaters: make(map[int]*netsim.Heartbeater),
	}
	for i, port := range cfg.Monitored {
		h := net.AddHost(port, uint32(0x0A00FF00+i))
		hb := netsim.NewHeartbeater(h, plan.Prog.Schema, FM, 0xFFFFFFFF, cfg.Ts)
		rig.Heartbeaters[port] = hb
	}
	return rig, nil
}

// Fig16Result is one gray-failure experiment outcome.
type Fig16Result struct {
	// FailAt is when the heartbeat source went silent.
	FailAt sim.Time
	// ReroutedAt is when the reaction staged replacement routes.
	ReroutedAt sim.Time
	// ReactionTime = ReroutedAt - FailAt (the Fig. 16 y-axis).
	ReactionTime time.Duration
	// Detected reports whether the failure was caught at all.
	Detected bool
	// FalsePositives counts healthy ports declared failed.
	FalsePositives int
}

// RunFig16 runs one gray-failure detection experiment: heartbeaters on
// `ports`, a gray failure on failPort at failAt, dialogue period td,
// expectation eta.
func RunFig16(seed int64, ports []int, failPort int, failAt time.Duration, td time.Duration, eta float64) (*Fig16Result, error) {
	cfg := DefaultGrayConfig(ports)
	cfg.Eta = eta
	var routes []RouteSpec
	for i, p := range ports {
		routes = append(routes, RouteSpec{Dst: uint32(0xC0A80000 + i), Primary: p, Backup: 31})
	}
	rig, err := BuildGray(seed, cfg, routes, td)
	if err != nil {
		return nil, err
	}
	for _, hb := range rig.Heartbeaters {
		hb.Start()
	}
	rig.Agent.Start()
	rig.Sim.RunFor(failAt)
	res := &Fig16Result{FailAt: rig.Sim.Now()}
	rig.Heartbeaters[failPort].Enabled = false
	// Run long enough for detection at any plausible Td.
	rig.Sim.RunFor(20*td + 5*time.Millisecond)
	rig.Agent.Stop()
	rig.Sim.RunFor(time.Millisecond)
	if err := rig.Agent.Err(); err != nil {
		return nil, err
	}
	if _, ok := rig.Detector.FailedPorts[failPort]; ok {
		res.Detected = true
		res.ReroutedAt = rig.Detector.ReroutedAt
		res.ReactionTime = res.ReroutedAt.Sub(res.FailAt)
	}
	for p := range rig.Detector.FailedPorts {
		if p != failPort {
			res.FalsePositives++
		}
	}
	return res, nil
}
