package usecases

import (
	"fmt"
	"strings"

	"repro/internal/compiler"
)

// BaseRouterP4R is the "basic router" Table 1 measures marginal costs
// against: the same headers and a plain routing table, no malleables,
// no reactions.
const BaseRouterP4R = `
header_type ipv4_t {
  fields { srcAddr : 32; dstAddr : 32; protocol : 8; ecn : 1; }
}
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; ack : 32; isAck : 1; } }
header tcp_t tcp;

action route_pkt(port) {
  modify_field(standard_metadata.egress_spec, port);
}
action drop_pkt() { drop(); }

table route {
  reads { ipv4.dstAddr : exact; }
  actions { route_pkt; drop_pkt; }
  default_action : drop_pkt;
  size : 64;
}

control ingress {
  apply(route);
}
`

// Table1Row is one use case's cost summary, in the paper's Table 1
// columns. Resource columns are marginal over the basic router.
type Table1Row struct {
	Name     string
	Reaction string

	MblValues int
	MblFields int
	MblTables int

	P4RLoC int
	P4LoC  int

	Stages    int
	Tables    int
	Registers int

	SRAMKB       float64
	TCAMKB       float64
	MetadataBits int
}

// useCaseSources pairs each use case with its program and the reaction
// summary the paper lists.
var useCaseSources = []struct {
	name     string
	src      string
	reaction string
}{
	{"Flow size estimation and DoS mitigation", DosP4R,
		"Derives per-sender rate estimates from sampled headers and a byte counter; blocks senders exceeding a threshold rate."},
	{"Route recomputation", GrayP4R,
		"Detects gray failures from per-port heartbeat counts against delta = floor(eta*Td/Ts); recomputes routes on detection."},
	{"Hash polarization mitigation", HashPolarP4R,
		"Watches per-path packet counters; on persistent MAD imbalance, shifts the ECMP hash input field."},
	{"Reinforcement Learning", RLECNP4R,
		"Reads queue depth and byte counters as RL state; Q-learning tunes the DCTCP ECN marking threshold."},
}

// Table1 compiles all four use cases and reports their marginal costs
// over the basic router.
func Table1() ([]Table1Row, error) {
	basePlan, err := compiler.CompileSource(BaseRouterP4R, compiler.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("base router: %w", err)
	}
	baseRes := basePlan.Prog.EstimateResources(nil)

	var rows []Table1Row
	for _, uc := range useCaseSources {
		plan, err := compiler.CompileSource(uc.src, compiler.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", uc.name, err)
		}
		res := plan.Prog.EstimateResources(nil)
		d := res.Delta(baseRes)
		mblTables := 0
		for _, ti := range plan.MblTables {
			if ti.VVCol >= 0 {
				mblTables++
			}
		}
		rows = append(rows, Table1Row{
			Name:         uc.name,
			Reaction:     uc.reaction,
			MblValues:    len(plan.MblValues),
			MblFields:    len(plan.MblFields),
			MblTables:    mblTables,
			P4RLoC:       plan.SourceLines,
			P4LoC:        plan.Prog.LineCount(),
			Stages:       d.Stages,
			Tables:       d.NumTables,
			Registers:    d.NumRegisters,
			SRAMKB:       float64(d.SRAMBits) / 8 / 1024,
			TCAMKB:       float64(d.TCAMBits) / 8 / 1024,
			MetadataBits: d.MetadataBits,
		})
	}
	return rows, nil
}

// FormatTable1 renders rows the way the paper's Table 1 reads.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %3s %3s %3s | %5s %5s | %4s %4s %4s | %9s %9s %8s\n",
		"Example", "val", "fld", "tbl", "P4R", "P4", "Stgs", "Tbls", "Regs", "SRAM", "TCAM", "Metadata")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-42s %3d %3d %3d | %5d %5d | %4d %4d %4d | %7.1fKB %7.1fKB %7db\n",
			r.Name, r.MblValues, r.MblFields, r.MblTables,
			r.P4RLoC, r.P4LoC, r.Stages, r.Tables, r.Registers,
			r.SRAMKB, r.TCAMKB, r.MetadataBits)
	}
	return b.String()
}
