// Package usecases implements the four Table-1 applications of the
// paper as P4R programs plus reactions, together with the scenario
// runners that regenerate the corresponding evaluation figures:
//
//	#1 flow-size estimation and DoS mitigation  (Figs. 14, 15)
//	#2 gray-failure route recomputation          (Fig. 16)
//	#3 hash-polarization mitigation              (§8.3.3)
//	#4 reinforcement-learning ECN tuning         (§8.3.4)
package usecases

import (
	"fmt"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FieldMap shared by all use-case programs.
var FM = netsim.FieldMap{
	Src: "ipv4.srcAddr", Dst: "ipv4.dstAddr", Proto: "ipv4.protocol",
	Seq: "tcp.seq", Ack: "tcp.ack", IsAck: "tcp.isAck", ECN: "ipv4.ecn",
}

// DosP4R is use case #1's program: per-sender statistics in the data
// plane (last source + total byte counter), a malleable blocklist for
// mitigation, and a plain routing table. The reaction body is native.
const DosP4R = `
header_type ipv4_t {
  fields { srcAddr : 32; dstAddr : 32; protocol : 8; ecn : 1; }
}
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; ack : 32; isAck : 1; } }
header tcp_t tcp;

register total_bytes { width : 64; instance_count : 1; }

action allow() { no_op(); }
action drop_pkt() { drop(); }
action route_pkt(port) {
  modify_field(standard_metadata.egress_spec, port);
}
action note() {
  register_increment(total_bytes, 0, standard_metadata.packet_length);
}

malleable table blocklist {
  reads { ipv4.srcAddr : exact; }
  actions { allow; drop_pkt; }
  default_action : allow;
  size : 256;
}
table route {
  reads { ipv4.dstAddr : exact; }
  actions { route_pkt; drop_pkt; }
  default_action : drop_pkt;
  size : 64;
}
table counter_tbl {
  actions { note; }
  default_action : note;
  size : 1;
}

reaction dos_react(ing ipv4.srcAddr, reg total_bytes) {
  // Implemented natively: per-sender rate estimation + blocking.
}

control ingress {
  apply(blocklist);
  apply(route);
  apply(counter_tbl);
}
`

// Event kinds the DoS detector exports through core.Options.EventSink.
// A fabric coordinator subscribes to these to compose network-wide
// reactions out of per-switch decisions.
const (
	// EventDosBlock reports a committed local block: Key is the blocked
	// source address, Val its estimated rate in bits per second.
	EventDosBlock = "dos.block"
	// EventHHEstimate reports an updated per-sender byte estimate: Key
	// is the source address, Val the estimated byte total.
	EventHHEstimate = "hh.estimate"
)

// DosAddressing places one instance of the DoS scenario onto a
// switch's ports: who the victim and attacker are and where the benign
// senders sit. Parameterizing this lets the same scenario definition
// be instantiated per-leaf in a fabric instead of copy-pasting the
// scenario body with different constants.
type DosAddressing struct {
	VictimAddr   uint32
	VictimPort   int
	AttackerAddr uint32
	AttackerPort int
	// SenderAddr/SenderPort place benign sender i.
	SenderAddr func(i int) uint32
	SenderPort func(i int) int
}

// DefaultDosAddressing is the single-switch Fig. 15 layout: victim on
// the last port, attacker beside it, senders spread over the rest.
func DefaultDosAddressing() DosAddressing {
	return DosAddressing{
		VictimAddr: 0xD0000001, VictimPort: 31,
		AttackerAddr: 0xBAD00001, AttackerPort: 30,
		SenderAddr: func(i int) uint32 { return uint32(0x0A000001 + i) },
		SenderPort: func(i int) int { return 1 + i%29 },
	}
}

// Routes returns the destination→egress-port map for this addressing:
// the victim's port plus the ACK return path of each benign sender.
func (ad DosAddressing) Routes(senders int) map[uint32]int {
	routes := map[uint32]int{ad.VictimAddr: ad.VictimPort}
	for i := 0; i < senders; i++ {
		routes[ad.SenderAddr(i)] = ad.SenderPort(i)
	}
	return routes
}

// DosConfig tunes the detector.
type DosConfig struct {
	// ThresholdBps blocks senders whose estimated rate exceeds this.
	ThresholdBps float64
	// MinDuration guards against spurious detection of new flows.
	MinDuration time.Duration
}

// DefaultDosConfig uses the paper's 1 Gbps threshold.
func DefaultDosConfig() DosConfig {
	return DosConfig{ThresholdBps: 1e9, MinDuration: 50 * time.Microsecond}
}

// DosDetector is the native reaction body of use case #1: it keeps a
// hash table of senders, attributes the marginal byte-count increase to
// the sampled sender, estimates rates as (f_t - f_t0)/(t - t0), and
// installs a blocklist entry once a sender exceeds the threshold.
type DosDetector struct {
	cfg DosConfig

	lastTotal uint64
	senders   map[uint64]*senderState
	// Blocked maps blocked senders to the block-committed time.
	Blocked map[uint64]sim.Time
	// Estimates exposes the current per-sender byte estimates.
	Estimates map[uint64]uint64
}

type senderState struct {
	firstSeen sim.Time
	bytes     uint64
	blocked   bool
}

// NewDosDetector builds the detector.
func NewDosDetector(cfg DosConfig) *DosDetector {
	return &DosDetector{
		cfg:       cfg,
		senders:   make(map[uint64]*senderState),
		Blocked:   make(map[uint64]sim.Time),
		Estimates: make(map[uint64]uint64),
	}
}

// React is the reaction body (registered for "dos_react").
func (d *DosDetector) React(ctx *core.Ctx) error {
	src := ctx.Field("ipv4.srcAddr")
	total := ctx.Reg("total_bytes")[0]
	delta := total - d.lastTotal
	d.lastTotal = total
	if delta == 0 || src == 0 {
		return nil
	}
	st := d.senders[src]
	if st == nil {
		st = &senderState{firstSeen: ctx.Now()}
		d.senders[src] = st
	}
	st.bytes += delta
	d.Estimates[src] = st.bytes
	ctx.Emit(EventHHEstimate, src, st.bytes)
	if st.blocked {
		return nil
	}
	dur := ctx.Now().Sub(st.firstSeen)
	if dur < d.cfg.MinDuration {
		return nil
	}
	rate := float64(st.bytes*8) / dur.Seconds()
	if rate < d.cfg.ThresholdBps {
		return nil
	}
	tbl, err := ctx.Table("blocklist")
	if err != nil {
		return err
	}
	if _, err := tbl.AddEntry(core.UserEntry{
		Keys: []rmt.KeySpec{rmt.ExactKey(src)}, Action: "drop_pkt",
	}); err != nil {
		return fmt.Errorf("dos: blocking %#x: %w", src, err)
	}
	st.blocked = true
	d.Blocked[src] = ctx.Now()
	ctx.Emit(EventDosBlock, src, uint64(rate))
	return nil
}

// dosRxDispatch makes a host deliver TCP segments to their flow.
func dosRxDispatch(h *netsim.Host) {
	h.Rx = func(pkt *packet.Packet) {
		if f, ok := pkt.Payload.(*netsim.TCPFlow); ok {
			f.HandlePacket(pkt, h)
		}
	}
}

// WireDosVictim attaches the scenario's victim host to net.
func WireDosVictim(net *netsim.Network, ad DosAddressing) *netsim.Host {
	v := net.AddHost(ad.VictimPort, ad.VictimAddr)
	dosRxDispatch(v)
	return v
}

// WireDosSenders attaches senders paced benign TCP flows to net per
// the addressing, all targeting the victim, with starts staggered so
// the paced senders do not phase-lock. onDeliver observes every byte
// the victim acknowledges (the goodput series).
func WireDosSenders(net *netsim.Network, schema *packet.Schema, senders int, perSenderBps float64, ad DosAddressing, onDeliver func(at sim.Time, bytes int)) []*netsim.TCPFlow {
	tcpCfg := netsim.DefaultTCPConfig()
	tcpCfg.PacedRate = perSenderBps
	tcpCfg.RTO = 500 * time.Microsecond
	var flows []*netsim.TCPFlow
	for i := 0; i < senders; i++ {
		h := net.Host(ad.SenderPort(i))
		if h == nil {
			h = net.AddHost(ad.SenderPort(i), ad.SenderAddr(i))
			dosRxDispatch(h)
		}
		flow := netsim.NewTCPFlow(h, schema, FM, ad.VictimAddr, tcpCfg)
		flow.OnDeliver = onDeliver
		flows = append(flows, flow)
		f := flow
		net.Sim.Schedule(time.Duration(i)*7*time.Microsecond, f.Start)
	}
	return flows
}

// WireDosAttacker attaches the attacker host and its flooder (not yet
// started) to net per the addressing.
func WireDosAttacker(net *netsim.Network, schema *packet.Schema, attackBps float64, ad DosAddressing) *netsim.Flooder {
	attacker := net.AddHost(ad.AttackerPort, ad.AttackerAddr)
	return netsim.NewFlooder(attacker, schema, FM, ad.VictimAddr, attackBps, 1500)
}

// DosRig is a ready-to-run use case #1 deployment.
type DosRig struct {
	Sim      *sim.Simulator
	Sw       *rmt.Switch
	Drv      *driver.Driver
	Plan     *compiler.Plan
	Agent    *core.Agent
	Net      *netsim.Network
	Detector *DosDetector
}

// BuildDos compiles and wires use case #1 on a fresh simulator. routes
// maps destination addresses to egress ports (installed in prologue).
func BuildDos(seed int64, cfg DosConfig, routes map[uint32]int) (*DosRig, error) {
	plan, err := compiler.CompileSource(DosP4R, compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s := sim.New(seed)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		return nil, err
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	det := NewDosDetector(cfg)
	agent := core.NewAgent(s, drv, plan, core.Options{
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			for dst, port := range routes {
				if _, err := drv.AddEntry(p, "route", rmt.Entry{
					Keys: []rmt.KeySpec{rmt.ExactKey(uint64(dst))}, Action: "route_pkt", Data: []uint64{uint64(port)},
				}); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err := agent.RegisterNativeReaction("dos_react", det.React); err != nil {
		return nil, err
	}
	net := netsim.New(s, sw, 25e9, time.Microsecond)
	return &DosRig{Sim: s, Sw: sw, Drv: drv, Plan: plan, Agent: agent, Net: net, Detector: det}, nil
}

// Fig15Result holds the DoS-mitigation timeline of Figure 15.
type Fig15Result struct {
	// Goodput is the benign aggregate goodput time series.
	Goodput stats.TimeSeries
	// FloodStart is when the attacker began.
	FloodStart sim.Time
	// BlockedAt is when the mitigation entry committed (zero if never).
	BlockedAt sim.Time
	// DetectionLatency = BlockedAt - FloodStart.
	DetectionLatency time.Duration
	// PreGbps/FloodGbps/PostGbps are mean benign goodputs in the three
	// phases (before flood, during unmitigated flood, after recovery).
	PreGbps   float64
	FloodGbps float64
	PostGbps  float64
}

// Fig15Config scales the scenario.
type Fig15Config struct {
	// Senders is the number of benign TCP senders (paper: 250, scaled
	// here to the port count).
	Senders int
	// PerSenderBps paces each benign flow; senders*rate should sit near
	// 20% of the bottleneck.
	PerSenderBps float64
	// BottleneckBps is the victim link (paper: 10 Gbps).
	BottleneckBps float64
	// AttackBps is the flood rate (paper: 25 Gbps).
	AttackBps float64
	// Warmup before the flood starts; Run length after it.
	Warmup time.Duration
	Tail   time.Duration
}

// DefaultFig15Config mirrors the paper's setup scaled to one switch.
func DefaultFig15Config() Fig15Config {
	return Fig15Config{
		Senders:       25,
		PerSenderBps:  80e6, // 25 x 80 Mbps = 2 Gbps = 20% of 10 Gbps
		BottleneckBps: 10e9,
		AttackBps:     25e9,
		Warmup:        2 * time.Millisecond,
		Tail:          3 * time.Millisecond,
	}
}

// RunFig15 runs the DoS mitigation scenario and returns the timeline.
func RunFig15(cfg Fig15Config, seed int64) (*Fig15Result, error) {
	ad := DefaultDosAddressing()
	rig, err := BuildDos(seed, DefaultDosConfig(), ad.Routes(cfg.Senders))
	if err != nil {
		return nil, err
	}
	rig.Sw.SetPortBandwidth(ad.VictimPort, cfg.BottleneckBps)

	res := &Fig15Result{}
	WireDosVictim(rig.Net, ad)
	WireDosSenders(rig.Net, rig.Plan.Prog.Schema, cfg.Senders, cfg.PerSenderBps, ad, func(at sim.Time, bytes int) {
		res.Goodput.Add(at.Duration(), float64(bytes))
	})
	flood := WireDosAttacker(rig.Net, rig.Plan.Prog.Schema, cfg.AttackBps, ad)

	rig.Agent.Start()
	rig.Sim.RunFor(cfg.Warmup)
	res.FloodStart = rig.Sim.Now()
	flood.Start()
	rig.Sim.RunFor(cfg.Tail)
	flood.Stop()
	rig.Agent.Stop()
	rig.Sim.RunFor(100 * time.Microsecond)
	if err := rig.Agent.Err(); err != nil {
		return nil, err
	}

	if at, ok := rig.Detector.Blocked[uint64(ad.AttackerAddr)]; ok {
		res.BlockedAt = at
		res.DetectionLatency = at.Sub(res.FloodStart)
	}
	res.PreGbps = goodputGbps(&res.Goodput, 0, res.FloodStart.Duration())
	if res.BlockedAt > 0 {
		res.FloodGbps = goodputGbps(&res.Goodput, res.FloodStart.Duration(), res.BlockedAt.Duration())
		recoverFrom := res.BlockedAt.Duration() + 500*time.Microsecond
		res.PostGbps = goodputGbps(&res.Goodput, recoverFrom, rig.Sim.Now().Duration())
	}
	return res, nil
}

func goodputGbps(ts *stats.TimeSeries, from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	var bytes float64
	for i, t := range ts.T {
		if t >= from && t < to {
			bytes += ts.V[i]
		}
	}
	return bytes * 8 / (to - from).Seconds() / 1e9
}
