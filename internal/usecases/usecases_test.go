package usecases

import (
	"strings"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestAllUseCasesCompile(t *testing.T) {
	for _, src := range []string{DosP4R, GrayP4R, HashPolarP4R, RLECNP4R, BaseRouterP4R} {
		plan, err := compiler.CompileSource(src, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		if err := plan.Prog.Validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
	}
}

// TestFig15DosMitigation is the headline DoS scenario: goodput
// collapses under the flood, Mantis blocks the attacker within ~100µs,
// and the benign flows recover.
func TestFig15DosMitigation(t *testing.T) {
	res, err := RunFig15(DefaultFig15Config(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockedAt == 0 {
		t.Fatal("attacker never blocked")
	}
	// The paper reports ~100µs from first malicious packet to rule
	// install; allow up to 300µs for the scaled scenario.
	if res.DetectionLatency > 300*time.Microsecond {
		t.Fatalf("detection latency %v, want ~100µs scale", res.DetectionLatency)
	}
	if res.DetectionLatency < 10*time.Microsecond {
		t.Fatalf("detection latency %v implausibly fast", res.DetectionLatency)
	}
	// Benign goodput: healthy before, recovered after.
	if res.PreGbps < 1.0 {
		t.Fatalf("pre-flood goodput %.2f Gbps, want ~2", res.PreGbps)
	}
	if res.PostGbps < res.PreGbps*0.6 {
		t.Fatalf("post-mitigation goodput %.2f Gbps did not recover toward %.2f", res.PostGbps, res.PreGbps)
	}
	// Exactly one sender blocked (no benign collateral).
	if len(res.Goodput.T) == 0 {
		t.Fatal("no goodput samples")
	}
}

func TestDosNoFalsePositivesWithoutAttack(t *testing.T) {
	cfg := DefaultFig15Config()
	cfg.AttackBps = 0 // configured but never started
	routes := map[uint32]int{0xD0000001: 31}
	rig, err := BuildDos(1, DefaultDosConfig(), routes)
	if err != nil {
		t.Fatal(err)
	}
	rig.Agent.Start()
	rig.Sim.RunFor(2 * time.Millisecond)
	rig.Agent.Stop()
	rig.Sim.RunFor(time.Millisecond)
	if len(rig.Detector.Blocked) != 0 {
		t.Fatalf("blocked %v without any traffic", rig.Detector.Blocked)
	}
}

// TestFig16GrayFailure checks detection + reroute lands in the
// 100-200µs band the paper reports for small T_d.
func TestFig16GrayFailure(t *testing.T) {
	ports := []int{2, 3, 4, 5}
	res, err := RunFig16(1, ports, 3, 500*time.Microsecond, 30*time.Microsecond, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("gray failure not detected")
	}
	if res.FalsePositives != 0 {
		t.Fatalf("false positives: %d", res.FalsePositives)
	}
	if res.ReactionTime > 400*time.Microsecond {
		t.Fatalf("reaction time %v, want 100-200µs scale", res.ReactionTime)
	}
	if res.ReactionTime < 20*time.Microsecond {
		t.Fatalf("reaction time %v implausible (< one window)", res.ReactionTime)
	}
}

// TestFig16ReactionScalesWithTd: larger measurement windows mean slower
// detection — the Fig. 16a trend.
func TestFig16ReactionScalesWithTd(t *testing.T) {
	ports := []int{2, 3}
	fast, err := RunFig16(1, ports, 2, 300*time.Microsecond, 20*time.Microsecond, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunFig16(1, ports, 2, 300*time.Microsecond, 200*time.Microsecond, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Detected || !slow.Detected {
		t.Fatal("detection failed")
	}
	if fast.ReactionTime >= slow.ReactionTime {
		t.Fatalf("T_d=20µs: %v vs T_d=200µs: %v; larger windows must react slower",
			fast.ReactionTime, slow.ReactionTime)
	}
}

// TestFig16EtaRobustness: a lower eta tolerates more heartbeat loss
// but still detects a real failure; the impact on reaction time is
// minor (the Fig. 16b observation).
func TestFig16EtaRobustness(t *testing.T) {
	ports := []int{2, 3}
	for _, eta := range []float64{0.2, 0.5, 0.9} {
		res, err := RunFig16(1, ports, 2, 300*time.Microsecond, 50*time.Microsecond, eta)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected || res.FalsePositives != 0 {
			t.Fatalf("eta=%v: detected=%v fps=%d", eta, res.Detected, res.FalsePositives)
		}
	}
}

// TestGrayHealUnlatchesAndEmits pins the fabric-facing detector hooks:
// with RecoverStrikes set, a gray port that starts delivering again is
// unlatched (routes restored, RecoveredAt stamped), and Event/
// ClearEvent fire with Key = port through the agent's event sink.
func TestGrayHealUnlatchesAndEmits(t *testing.T) {
	ports := []int{2, 3}
	cfg := DefaultGrayConfig(ports)
	cfg.Event, cfg.ClearEvent = "gray.suspect", "gray.clear"
	cfg.RecoverStrikes = 2
	var events []core.Event
	cfg.Sink = func(ev core.Event) { events = append(events, ev) }
	routes := []RouteSpec{{Dst: 0xC0A80001, Primary: 3, Backup: 31}}
	rig, err := BuildGray(1, cfg, routes, 30*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, hb := range rig.Heartbeaters {
		hb.Start()
	}
	rig.Agent.Start()
	rig.Sim.RunFor(300 * time.Microsecond)
	rig.Heartbeaters[3].Enabled = false
	rig.Sim.RunFor(500 * time.Microsecond)
	if _, failed := rig.Detector.FailedPorts[3]; !failed {
		t.Fatal("port 3 not detected while silent")
	}
	rig.Heartbeaters[3].Enabled = true
	rig.Sim.RunFor(500 * time.Microsecond)
	rig.Agent.Stop()
	rig.Sim.RunFor(time.Millisecond)
	if err := rig.Agent.Err(); err != nil {
		t.Fatal(err)
	}
	if _, failed := rig.Detector.FailedPorts[3]; failed {
		t.Fatal("port 3 still latched failed after heal")
	}
	if rig.Detector.RecoveredAt[3] == 0 {
		t.Fatal("RecoveredAt not stamped")
	}
	var suspects, clears int
	for _, ev := range events {
		switch ev.Kind {
		case "gray.suspect":
			suspects++
		case "gray.clear":
			clears++
		}
		if ev.Key != 3 {
			t.Fatalf("event %s on port %d, want 3", ev.Kind, ev.Key)
		}
	}
	if suspects != 1 || clears != 1 {
		t.Fatalf("events: %d suspects, %d clears, want 1 and 1 (%+v)", suspects, clears, events)
	}
	// The managed route must be back on its primary.
	ents, err := rig.Sw.Entries("route")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Keys[0].Value == 0xC0A80001 && (e.Action != "route_pkt" || e.Data[0] != 3) {
			t.Fatalf("route not restored to primary: %+v", e)
		}
	}
}

// TestHashPolarization: a polarized workload triggers the MAD detector,
// the reaction shifts the hash input, and traffic spreads out.
func TestHashPolarization(t *testing.T) {
	res, err := RunPolar(1, 50*time.Microsecond, 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shifted {
		t.Fatal("reaction never shifted the hash input")
	}
	if res.MADBefore < 0.9 {
		t.Fatalf("pre-shift MAD ratio %.2f, want ~1 (fully polarized)", res.MADBefore)
	}
	if res.MADAfter > res.MADBefore/2 {
		t.Fatalf("post-shift MAD %.2f vs pre %.2f; shift should balance", res.MADAfter, res.MADBefore)
	}
	// After shifting to srcAddr, every path should carry some traffic.
	for i, share := range res.PortShares {
		if share == 0 {
			t.Fatalf("path %d carried nothing: %v", i, res.PortShares)
		}
	}
}

// TestRLECNTuning: the learner must run, adapt the threshold, and not
// degrade the reward.
func TestRLECNTuning(t *testing.T) {
	res, err := RunRL(1, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates < 100 {
		t.Fatalf("only %d TD updates", res.Updates)
	}
	if res.DeliveredBytes < 1_000_000 {
		t.Fatalf("goodput collapsed: %d bytes", res.DeliveredBytes)
	}
	if res.LateReward < res.EarlyReward-0.2 {
		t.Fatalf("reward degraded: early %.3f late %.3f", res.EarlyReward, res.LateReward)
	}
	// The learned threshold for moderate queues should be a real member
	// of the action space.
	found := false
	for _, th := range []uint64{2, 4, 8, 16, 32, 64, 128} {
		if res.FinalGreedyThreshold == th {
			found = true
		}
	}
	if !found {
		t.Fatalf("greedy threshold %d not in action space", res.FinalGreedyThreshold)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Spot-check the malleable inventory against the paper's Table 1
	// shape: DoS has a malleable table; hash polarization has malleable
	// fields; RL has a malleable value.
	if rows[0].MblTables == 0 {
		t.Fatalf("DoS use case has no malleable table: %+v", rows[0])
	}
	if rows[2].MblFields == 0 {
		t.Fatalf("hash polarization has no malleable field: %+v", rows[2])
	}
	if rows[3].MblValues == 0 {
		t.Fatalf("RL has no malleable value: %+v", rows[3])
	}
	for _, r := range rows {
		if r.P4RLoC == 0 || r.P4LoC == 0 {
			t.Fatalf("LoC missing: %+v", r)
		}
		if r.P4LoC <= r.P4RLoC {
			t.Fatalf("%s: generated P4 (%d) should exceed P4R (%d)", r.Name, r.P4LoC, r.P4RLoC)
		}
		if r.MetadataBits <= 0 {
			t.Fatalf("%s: no generated metadata", r.Name)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Reinforcement Learning") {
		t.Fatal("format output incomplete")
	}
}

// TestDosEstimatorOnSwitchMatchesTraceLevel replays a small trace
// through the real agent loop (switch registers, mv-gated polling,
// delta attribution) and checks that the per-sender byte estimates sum
// to the injected total and are individually sane — validating that
// the trace-level Fig. 14 sampler models the real loop.
func TestDosEstimatorOnSwitchMatchesTraceLevel(t *testing.T) {
	tr := workload.Generate(workload.TraceConfig{
		Flows: 200, TotalPackets: 5000, Duration: 5 * time.Millisecond,
		ZipfS: 1.1, MinPktSize: 64, MaxPktSize: 1500, Sources: 32, Seed: 5,
	})
	const victim = 0xD0000001
	rig, err := BuildDos(1, DosConfig{ThresholdBps: 1e18, MinDuration: time.Second}, map[uint32]int{victim: 31})
	if err != nil {
		t.Fatal(err)
	}
	rig.Agent.Start()
	for _, p := range tr.Packets {
		p := p
		rig.Sim.Schedule(p.Time+50*time.Microsecond, func() {
			pkt := rig.Plan.Prog.Schema.New()
			pkt.Size = p.Size
			pkt.SetName("ipv4.srcAddr", uint64(p.Flow.Src))
			pkt.SetName("ipv4.dstAddr", victim)
			rig.Sw.Inject(int(p.Flow.Src)%30, pkt)
		})
	}
	rig.Sim.RunFor(6 * time.Millisecond)
	rig.Agent.Stop()
	rig.Sim.Run()
	if err := rig.Agent.Err(); err != nil {
		t.Fatal(err)
	}

	var estSum, actSum uint64
	for _, v := range rig.Detector.Estimates {
		estSum += v
	}
	actual := tr.SenderBytes()
	for _, v := range actual {
		actSum += v
	}
	// Attribution conserves bytes up to the final un-polled window.
	if estSum > actSum || estSum < actSum*95/100 {
		t.Fatalf("estimated %d of %d actual bytes", estSum, actSum)
	}
	// Large senders (elephants) are individually accurate within 2x.
	for src, act := range actual {
		if act < actSum/10 {
			continue
		}
		est := rig.Detector.Estimates[uint64(src)]
		if est < act/2 || est > act*2 {
			t.Fatalf("sender %#x: est %d vs actual %d", src, est, act)
		}
	}
}

// TestFig15Deterministic: the full DoS scenario — switch, driver, agent,
// TCP flows, flood — is exactly reproducible from its seed.
func TestFig15Deterministic(t *testing.T) {
	cfg := DefaultFig15Config()
	cfg.Tail = time.Millisecond
	a, err := RunFig15(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig15(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.BlockedAt != b.BlockedAt || a.PreGbps != b.PreGbps || a.Goodput.Len() != b.Goodput.Len() {
		t.Fatalf("nondeterministic: %+v vs %+v", a.BlockedAt, b.BlockedAt)
	}
}

// TestGeneratedProgramsRespectRegisterStageConstraint: the compiler's
// output must not require a register to be reachable from multiple
// stages (the §2 hardware constraint).
func TestGeneratedProgramsRespectRegisterStageConstraint(t *testing.T) {
	for _, src := range []string{DosP4R, GrayP4R, HashPolarP4R, RLECNP4R} {
		plan, err := compiler.CompileSource(src, compiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if v := plan.Prog.RegisterStageViolations(); len(v) != 0 {
			t.Fatalf("generated program violates the single-stage SRAM constraint: %+v", v)
		}
	}
}
