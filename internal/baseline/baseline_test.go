package baseline

import (
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testTrace() *workload.Trace {
	return workload.Generate(workload.TraceConfig{
		Flows: 2000, TotalPackets: 100000, Duration: 200 * time.Millisecond,
		ZipfS: 1.1, MinPktSize: 64, MaxPktSize: 1500, Sources: 256, Seed: 3,
	})
}

func meanErr(r EvalResult) float64 {
	s := 0.0
	for _, e := range r.MeanErr {
		s += e
	}
	return s / float64(len(r.MeanErr))
}

func bucketErr(r EvalResult, label string) (float64, bool) {
	for i, b := range r.Buckets {
		if b == label {
			return r.MeanErr[i], true
		}
	}
	return 0, false
}

func TestSFlowSamplingScale(t *testing.T) {
	// A rate-1 sFlow samples everything: zero error.
	tr := testTrace()
	r := RunEstimator(tr, NewSFlow(1, 1))
	if meanErr(r) != 0 {
		t.Fatalf("rate-1 sFlow error = %v, want 0", meanErr(r))
	}
}

func TestSFlowHighRateMissesSmallFlows(t *testing.T) {
	tr := testTrace()
	r := RunEstimator(tr, NewSFlow(30000, 1))
	small, ok := bucketErr(r, "<1KB")
	if !ok {
		t.Fatal("no small-flow bucket")
	}
	// At 1:30000 on a ~100K-packet trace almost no mouse is sampled:
	// relative error ~1 (estimate 0).
	if small < 0.9 {
		t.Fatalf("sFlow small-flow error = %v, want ~1", small)
	}
}

func TestCountMinOverestimatesOnly(t *testing.T) {
	tr := testTrace()
	cm := NewCountMin(2, 512, 1) // deliberately small: many collisions
	for _, p := range tr.Packets {
		cm.Observe(uint64(p.Flow.ID), p.Size, p.Time)
	}
	for _, f := range tr.Flows {
		if cm.Estimate(uint64(f.ID)) < float64(f.Bytes) {
			t.Fatalf("CMS underestimated flow %d", f.ID)
		}
	}
}

func TestCountMinWiderIsBetter(t *testing.T) {
	tr := testTrace()
	small := meanErr(RunEstimator(tr, NewCountMin(2, 256, 1)))
	large := meanErr(RunEstimator(tr, NewCountMin(2, 8192, 1)))
	if large >= small {
		t.Fatalf("8K sketch error %v >= 256 sketch error %v", large, small)
	}
}

func TestHashTableCollisionMisattribution(t *testing.T) {
	ht := NewHashTable(4, 1) // force collisions
	for k := uint64(0); k < 64; k++ {
		ht.Observe(k, 100, 0)
	}
	// Each slot holds ~16 flows' bytes, so estimates are ~16x.
	if ht.Estimate(0) < 200 {
		t.Fatalf("collision misattribution not visible: %v", ht.Estimate(0))
	}
}

func TestMantisSamplerBoundedError(t *testing.T) {
	tr := testTrace()
	// Poll every 10µs of trace time (~5 packets between polls at this
	// trace's rate — matching the paper's ~1-in-5 sampling).
	r := RunEstimator(tr, NewMantisSampler(10*time.Microsecond))
	big, ok := bucketErr(r, ">1MB")
	if !ok {
		t.Fatal("no large-flow bucket")
	}
	if big > 0.3 {
		t.Fatalf("Mantis large-flow error = %v, want small", big)
	}
}

// TestFig14Ranking checks the headline comparison: Mantis beats sFlow
// everywhere by orders of magnitude, and beats the collision-bound
// data-plane structures on small flows.
func TestFig14Ranking(t *testing.T) {
	tr := testTrace()
	mantis := RunEstimator(tr, NewMantisSampler(10*time.Microsecond))
	sflow := RunEstimator(tr, NewSFlow(30000, 1))
	// The paper runs ~370K flows against 8,192 counters (45:1); cms44
	// keeps that pressure at this trace's 2,000 flows, while cms8k is the
	// paper's literal size (nearly collision-free here).
	cms := RunEstimator(tr, NewCountMin(2, 44, 1))
	cms8k := RunEstimator(tr, NewCountMin(2, 8192, 1))

	// Every bucket above the mice: Mantis is several times (at full
	// scale, orders of magnitude) more accurate than sFlow, whose rare
	// samples miss or wildly overshoot.
	for _, bucket := range []string{"1-10KB", "10-100KB", "100KB-1MB", ">1MB"} {
		m, _ := bucketErr(mantis, bucket)
		s, _ := bucketErr(sflow, bucket)
		if m >= s/2 {
			t.Fatalf("bucket %s: mantis %v not clearly better than sflow %v", bucket, m, s)
		}
	}
	// Small flows: Mantis's bounded sampling error beats the sketch's
	// unbounded collision misattribution.
	mSmall, _ := bucketErr(mantis, "<1KB")
	cSmall, _ := bucketErr(cms, "<1KB")
	if mSmall >= cSmall/2 {
		t.Fatalf("mantis small-flow error %v not clearly better than CMS %v", mSmall, cSmall)
	}
	// Large flows: an adequately-sized sketch is slightly better (few
	// collisions for elephants), Mantis comparable — the paper's stated
	// tradeoff.
	mBig, _ := bucketErr(mantis, ">1MB")
	cBig, _ := bucketErr(cms8k, ">1MB")
	if cBig > mBig {
		t.Fatalf("CMS/8K large-flow error %v > mantis %v; expected CMS to win on elephants", cBig, mBig)
	}
	if mBig > 0.1 {
		t.Fatalf("mantis large-flow error %v, want comparable to data plane (<0.1)", mBig)
	}
}

func TestMantisSamplerTotalConservation(t *testing.T) {
	// Every byte is attributed to some key: the sum of estimates equals
	// the trace total.
	tr := testTrace()
	m := NewMantisSampler(10 * time.Microsecond)
	for _, p := range tr.Packets {
		m.Observe(uint64(p.Flow.ID), p.Size, p.Time)
	}
	m.Flush()
	var sum float64
	for _, f := range tr.Flows {
		sum += m.Estimate(uint64(f.ID))
	}
	if uint64(sum) != tr.TotalBytes() {
		t.Fatalf("attributed %v of %v bytes", uint64(sum), tr.TotalBytes())
	}
}

// ---- two-phase updater ----

func twoPhaseRig(t *testing.T) (*sim.Simulator, *driver.Driver) {
	t.Helper()
	prog := p4.NewProgram("twophase")
	prog.DefineStandardMetadata()
	k := prog.Schema.Define("h.k", 16)
	ver := prog.Schema.Define("m.ver", 32)
	egr := prog.Schema.MustID(p4.FieldEgressSpec)
	prog.AddAction(&p4.Action{
		Name:   "set_ver",
		Params: []p4.Param{{Name: "v", Width: 32}},
		Body:   []p4.Primitive{p4.ModifyField{Dst: ver, DstName: "m.ver", Src: p4.ParamOp(0, "v")}},
	})
	prog.AddAction(&p4.Action{
		Name:   "fwd",
		Params: []p4.Param{{Name: "port", Width: 16}},
		Body:   []p4.Primitive{p4.ModifyField{Dst: egr, DstName: p4.FieldEgressSpec, Src: p4.ParamOp(0, "port")}},
	})
	prog.AddTable(&p4.Table{
		Name: "ver_tbl", ActionNames: []string{"set_ver"},
		DefaultAction: &p4.ActionCall{Action: "set_ver", Data: []uint64{0}}, Size: 1,
	})
	prog.AddTable(&p4.Table{
		Name: "rules",
		Keys: []p4.MatchKey{
			{FieldName: "h.k", Field: k, Width: 16, Kind: p4.MatchExact},
			{FieldName: "m.ver", Field: ver, Width: 32, Kind: p4.MatchExact},
		},
		ActionNames: []string{"fwd"},
	})
	prog.Ingress = []p4.ControlStmt{p4.Apply{Table: "ver_tbl"}, p4.Apply{Table: "rules"}}
	s := sim.New(1)
	sw, err := rmt.New(s, prog, rmt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, driver.New(s, sw, driver.DefaultCostModel())
}

func TestTwoPhaseInstallReplacesConfig(t *testing.T) {
	s, drv := twoPhaseRig(t)
	tp := NewTwoPhase(drv, "rules", "ver_tbl", "set_ver")
	mkRules := func(n int, port uint64) []Rule {
		var rs []Rule
		for i := 0; i < n; i++ {
			rs = append(rs, Rule{
				Keys: []rmt.KeySpec{rmt.ExactKey(uint64(i))}, Action: "fwd", Data: []uint64{port},
			})
		}
		return rs
	}
	s.Spawn("cp", func(p *sim.Proc) {
		if err := tp.Install(p, mkRules(10, 1)); err != nil {
			t.Error(err)
			return
		}
		if err := tp.Install(p, mkRules(10, 2)); err != nil {
			t.Error(err)
		}
	})
	s.Run()
	if tp.Version() != 2 {
		t.Fatalf("version = %d", tp.Version())
	}
	// Config 2: 10 installs + flip; plus deletion of config 1's rules.
	// Total ops: (10+1) + (10+1+10) = 32.
	if tp.Ops != 32 {
		t.Fatalf("ops = %d, want 32", tp.Ops)
	}
	entries, _ := drv.Switch().Entries("rules")
	if len(entries) != 10 {
		t.Fatalf("stale entries remain: %d", len(entries))
	}
}

// TestTwoPhaseCostVsDelta quantifies the §5.1.2 argument: for a
// one-entry change in an N-entry configuration, two-phase pays O(N)
// while a delta-based scheme would pay O(1).
func TestTwoPhaseCostVsDelta(t *testing.T) {
	s, drv := twoPhaseRig(t)
	tp := NewTwoPhase(drv, "rules", "ver_tbl", "set_ver")
	rules := make([]Rule, 50)
	for i := range rules {
		rules[i] = Rule{Keys: []rmt.KeySpec{rmt.ExactKey(uint64(i))}, Action: "fwd", Data: []uint64{1}}
	}
	var opsFirst, opsSecond uint64
	s.Spawn("cp", func(p *sim.Proc) {
		tp.Install(p, rules)
		opsFirst = tp.Ops
		rules[0].Data = []uint64{9} // change ONE entry
		tp.Install(p, rules)
		opsSecond = tp.Ops - opsFirst
	})
	s.Run()
	if opsSecond < 100 {
		t.Fatalf("one-entry change cost %d ops, expected ~2N+1 = 101", opsSecond)
	}
}
