// Package baseline implements the comparators the paper evaluates
// Mantis against: the sFlow sampled estimator and the data-plane
// hash-table and count-min-sketch flow-size estimators of Figure 14,
// plus the Reitblatt-style two-phase update protocol that §5.1.2
// contrasts with Mantis's three-phase scheme.
package baseline

import (
	"math/rand"
	"time"

	"repro/internal/workload"
)

// Estimator consumes a packet stream and estimates per-key byte counts.
// Keys are flow IDs for flow-size estimation or source addresses for
// the DoS use case.
type Estimator interface {
	// Observe processes one packet attributed to key.
	Observe(key uint64, bytes int, at time.Duration)
	// Estimate returns the estimated byte count for key.
	Estimate(key uint64) float64
	// Name identifies the estimator in reports.
	Name() string
}

// ---- sFlow ----

// SFlow models the sFlow estimator: 1-in-Rate packet sampling in the
// data plane with flow statistics reconstructed in the control plane.
// The paper uses the production-recommended 1:30000 rate.
type SFlow struct {
	Rate    int
	rng     *rand.Rand
	sampled map[uint64]uint64
}

// NewSFlow returns an sFlow estimator sampling 1 in rate packets.
func NewSFlow(rate int, seed int64) *SFlow {
	return &SFlow{Rate: rate, rng: rand.New(rand.NewSource(seed)), sampled: make(map[uint64]uint64)}
}

// Observe implements Estimator with uniform packet sampling.
func (s *SFlow) Observe(key uint64, bytes int, _ time.Duration) {
	if s.rng.Intn(s.Rate) == 0 {
		s.sampled[key] += uint64(bytes)
	}
}

// Estimate scales the sampled bytes by the sampling rate.
func (s *SFlow) Estimate(key uint64) float64 {
	return float64(s.sampled[key]) * float64(s.Rate)
}

// Name implements Estimator.
func (s *SFlow) Name() string { return "sflow" }

// ---- Count-min sketch ----

// CountMin is a d-row count-min sketch of byte counters, the
// data-plane sketch baseline of Fig. 14 (the paper uses 2 stages of
// 8,192 or 16,384 counters).
type CountMin struct {
	rows [][]uint64
	seed []uint64
	w    uint64
}

// NewCountMin builds a sketch with d rows of w counters.
func NewCountMin(d, w int, seed int64) *CountMin {
	cm := &CountMin{w: uint64(w)}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < d; i++ {
		cm.rows = append(cm.rows, make([]uint64, w))
		cm.seed = append(cm.seed, rng.Uint64())
	}
	return cm
}

// hash64 is a splitmix64-style finalizer. Byte-oriented hashes like FNV
// map sequential integer keys modulo a power-of-two almost permutation-
// like (no avalanche in the low bits), which makes synthetic-trace
// collisions artificially uniform; the multiply-xorshift finalizer gives
// proper avalanche so sketch collisions are Poisson, as with real keys.
func hash64(key, seed uint64) uint64 {
	x := key + seed + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Observe implements Estimator.
func (cm *CountMin) Observe(key uint64, bytes int, _ time.Duration) {
	for i := range cm.rows {
		cm.rows[i][hash64(key, cm.seed[i])%cm.w] += uint64(bytes)
	}
}

// Estimate returns the minimum counter across rows (classic CMS bound:
// overestimates only).
func (cm *CountMin) Estimate(key uint64) float64 {
	min := ^uint64(0)
	for i := range cm.rows {
		v := cm.rows[i][hash64(key, cm.seed[i])%cm.w]
		if v < min {
			min = v
		}
	}
	return float64(min)
}

// Name implements Estimator.
func (cm *CountMin) Name() string { return "count-min" }

// ---- Data-plane hash table ----

// HashTable models a data-plane exact-match hash table with a fixed
// slot count and no collision resolution: colliding flows share one
// byte counter, so collisions misattribute arbitrarily many bytes — the
// error source the paper contrasts with Mantis's bounded sampling
// error.
type HashTable struct {
	slots []uint64
	seed  uint64
}

// NewHashTable builds a table with n slots.
func NewHashTable(n int, seed int64) *HashTable {
	return &HashTable{slots: make([]uint64, n), seed: uint64(seed)}
}

// Observe implements Estimator.
func (ht *HashTable) Observe(key uint64, bytes int, _ time.Duration) {
	ht.slots[hash64(key, ht.seed)%uint64(len(ht.slots))] += uint64(bytes)
}

// Estimate implements Estimator.
func (ht *HashTable) Estimate(key uint64) float64 {
	return float64(ht.slots[hash64(key, ht.seed)%uint64(len(ht.slots))])
}

// Name implements Estimator.
func (ht *HashTable) Name() string { return "hashtable" }

// ---- Mantis sampler ----

// MantisSampler models use case #1's estimation loop at trace level:
// the data plane keeps the current packet's key and a total byte
// counter; every Interval the reaction attributes the marginal byte
// increase to the key it sampled. Inaccuracy is bounded sampling error
// rather than collision error.
type MantisSampler struct {
	Interval time.Duration

	est        map[uint64]uint64
	totalBytes uint64
	lastTotal  uint64
	lastKey    uint64
	haveKey    bool
	nextPoll   time.Duration
}

// NewMantisSampler polls every interval of trace time (the paper
// sustains ~10µs, about 1 in 5 packets on its trace).
func NewMantisSampler(interval time.Duration) *MantisSampler {
	return &MantisSampler{Interval: interval, est: make(map[uint64]uint64)}
}

// Observe implements Estimator. Polls fire lazily on the packet
// timeline, exactly as the real loop samples the register state left by
// the most recent packet.
func (m *MantisSampler) Observe(key uint64, bytes int, at time.Duration) {
	for m.haveKey && at >= m.nextPoll {
		m.poll()
		m.nextPoll += m.Interval
	}
	if !m.haveKey {
		m.haveKey = true
		m.nextPoll = at + m.Interval
	}
	m.totalBytes += uint64(bytes)
	m.lastKey = key
}

func (m *MantisSampler) poll() {
	delta := m.totalBytes - m.lastTotal
	m.lastTotal = m.totalBytes
	m.est[m.lastKey] += delta
}

// Flush runs a final poll so trailing bytes are attributed.
func (m *MantisSampler) Flush() {
	if m.haveKey {
		m.poll()
	}
}

// Estimate implements Estimator.
func (m *MantisSampler) Estimate(key uint64) float64 { return float64(m.est[key]) }

// Name implements Estimator.
func (m *MantisSampler) Name() string { return "mantis" }

// ---- Trace evaluation ----

// EvalResult is one estimator's accuracy on a trace, split by flow
// size the way Fig. 14 buckets its x-axis.
type EvalResult struct {
	Name string
	// MeanErrByBucket maps a flow-size bucket label to mean relative
	// error; Buckets preserves order.
	Buckets []string
	MeanErr []float64
}

// SizeBuckets are the Fig. 14 x-axis buckets (flow size in bytes).
var SizeBuckets = []struct {
	Label string
	Lo    uint64
	Hi    uint64
}{
	{"<1KB", 0, 1 << 10},
	{"1-10KB", 1 << 10, 10 << 10},
	{"10-100KB", 10 << 10, 100 << 10},
	{"100KB-1MB", 100 << 10, 1 << 20},
	{">1MB", 1 << 20, ^uint64(0)},
}

// RunEstimator replays a trace through an estimator keyed by flow ID
// and returns mean relative error per size bucket.
func RunEstimator(tr *workload.Trace, est Estimator) EvalResult {
	for _, p := range tr.Packets {
		est.Observe(uint64(p.Flow.ID), p.Size, p.Time)
	}
	if f, ok := est.(interface{ Flush() }); ok {
		f.Flush()
	}
	sums := make([]float64, len(SizeBuckets))
	counts := make([]int, len(SizeBuckets))
	for _, f := range tr.Flows {
		e := est.Estimate(uint64(f.ID))
		actual := float64(f.Bytes)
		err := 0.0
		if actual > 0 {
			if e > actual {
				err = (e - actual) / actual
			} else {
				err = (actual - e) / actual
			}
		}
		for b, bk := range SizeBuckets {
			if f.Bytes >= bk.Lo && f.Bytes < bk.Hi {
				sums[b] += err
				counts[b]++
				break
			}
		}
	}
	res := EvalResult{Name: est.Name()}
	for b, bk := range SizeBuckets {
		if counts[b] == 0 {
			continue
		}
		res.Buckets = append(res.Buckets, bk.Label)
		res.MeanErr = append(res.MeanErr, sums[b]/float64(counts[b]))
	}
	return res
}
