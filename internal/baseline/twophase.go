package baseline

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// TwoPhase implements the Reitblatt-style consistent-update protocol
// the paper contrasts with Mantis's three-phase scheme (§5.1.2): every
// update installs the COMPLETE new configuration under version i+1,
// flips the version, and removes the stale version-i rules afterwards.
// The cost is therefore proportional to the configuration size, not to
// the delta, and stale copies linger for a conservative timeout —
// exactly the two drawbacks §5.1.2 calls out for high-frequency loops.
//
// The managed table must carry a trailing exact-match version column
// (the analogue of [35]'s packet version tag). Version width is
// unbounded here (unlike Mantis's 1 bit, which suffices only because
// Mantis bounds in-flight versions to two).
type TwoPhase struct {
	drv   *driver.Driver
	table string
	// versionTable is a single-default-action table whose first action
	// datum is the current version, standing in for the ingress tagger.
	versionTable  string
	versionAction string

	version   uint64
	installed []rmt.EntryHandle
	// Ops counts driver table operations issued.
	Ops uint64
}

// NewTwoPhase manages `table` (whose last key column is the version)
// using `versionTable`'s default action (arg 0) as the version source.
func NewTwoPhase(drv *driver.Driver, table, versionTable, versionAction string) *TwoPhase {
	return &TwoPhase{drv: drv, table: table, versionTable: versionTable, versionAction: versionAction}
}

// Rule is one entry of the target configuration (keys exclude the
// version column).
type Rule struct {
	Keys     []rmt.KeySpec
	Priority int
	Action   string
	Data     []uint64
}

// Install replaces the entire configuration with rules: add all rules
// under version+1, flip the version atomically, then delete every
// version-tagged rule of the old configuration.
func (tp *TwoPhase) Install(p *sim.Proc, rules []Rule) error {
	next := tp.version + 1
	var fresh []rmt.EntryHandle
	for _, r := range rules {
		keys := append(append([]rmt.KeySpec(nil), r.Keys...), rmt.ExactKey(next))
		h, err := tp.drv.AddEntry(p, tp.table, rmt.Entry{
			Keys: keys, Priority: r.Priority, Action: r.Action, Data: r.Data,
		})
		if err != nil {
			return fmt.Errorf("two-phase install: %w", err)
		}
		tp.Ops++
		fresh = append(fresh, h)
	}
	if err := tp.drv.SetDefaultAction(p, tp.versionTable, &p4.ActionCall{
		Action: tp.versionAction, Data: []uint64{next},
	}); err != nil {
		return fmt.Errorf("two-phase commit: %w", err)
	}
	tp.Ops++
	// Remove the stale configuration ([35] waits a conservative timeout;
	// with per-packet atomicity in the model the flip completes the
	// transition, so removal can proceed immediately).
	for _, h := range tp.installed {
		if err := tp.drv.DeleteEntry(p, tp.table, h); err != nil {
			return fmt.Errorf("two-phase cleanup: %w", err)
		}
		tp.Ops++
	}
	tp.installed = fresh
	tp.version = next
	return nil
}

// Version returns the currently committed version number.
func (tp *TwoPhase) Version() uint64 { return tp.version }
