// Package mantis_test benchmarks the Mantis reproduction: one benchmark
// per evaluation table/figure (regenerating its data), plus hot-path
// microbenchmarks of the substrate (pipeline, dialogue loop, compiler,
// reaction interpreter).
package mantis_test

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/rcl"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/usecases"
	"repro/internal/workload"
)

// ---- One benchmark per table/figure ----

func BenchmarkFig10aMeasurement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig10a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10bUpdate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig10b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11DutyCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12LegacyContention(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13TCAMUsage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig13a(32); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.RunFig13b(4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Inventory(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := usecases.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14Estimation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig14(0.01, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15DosMitigation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := usecases.RunFig15(usecases.DefaultFig15Config(), int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16GrayFailure(b *testing.B) {
	b.ReportAllocs()
	ports := []int{2, 3, 4, 5}
	for i := 0; i < b.N; i++ {
		res, err := usecases.RunFig16(int64(i+1), ports, 3, 300*time.Microsecond, 50*time.Microsecond, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Detected {
			b.Fatal("failure not detected")
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblations(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Substrate hot paths ----

const benchSrc = `
header_type h_t { fields { tag : 16; port : 8; } }
header h_t hdr;
register qdepths { width : 32; instance_count : 16; }
malleable value v { width : 16; init : 0; }
action observe() {
  register_write(qdepths, hdr.port, standard_metadata.packet_length);
  modify_field(hdr.tag, ${v});
  modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { observe; } default_action : observe; size : 1; }
reaction r(reg qdepths) {
  uint16_t m = 0;
  for (int i = 0; i < 16; ++i) { if (qdepths[i] > m) { m = qdepths[i]; } }
  ${v} = m;
}
control ingress { apply(t); }
`

// BenchmarkCompile measures the Mantis compiler end to end.
func BenchmarkCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.CompileSource(benchSrc, compiler.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDialogueIteration measures the real (host CPU) cost of one
// virtual dialogue iteration including measurement, the interpreted
// reaction, and the serializable commit.
func BenchmarkDialogueIteration(b *testing.B) {
	b.ReportAllocs()
	plan, err := compiler.CompileSource(benchSrc, compiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	agent := core.NewAgent(s, drv, plan, core.Options{MaxIterations: uint64(b.N)})
	b.ResetTimer()
	agent.Start()
	s.Run()
	if err := agent.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSwitchPipeline measures packets/second through the full
// compiled pipeline (init tables, user tables, measurement export,
// register mirroring).
func BenchmarkSwitchPipeline(b *testing.B) {
	b.ReportAllocs()
	plan, err := compiler.CompileSource(benchSrc, compiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pkt := plan.Prog.Schema.New()
	pkt.Size = 256
	pkt.SetName("hdr.port", 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Inject(0, pkt.Clone())
		s.Run()
	}
}

// BenchmarkRclReaction measures the interpreted reaction body alone.
func BenchmarkRclReaction(b *testing.B) {
	b.ReportAllocs()
	prog, err := rcl.Compile(`
	uint16_t m = 0;
	for (int i = 0; i < 16; ++i) { if (q[i] > m) { m = q[i]; } }
	${v} = m;
	`)
	if err != nil {
		b.Fatal(err)
	}
	host := benchHost{}
	params := map[string]any{"q": make([]int64, 16)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := prog.Exec(host, params); err != nil {
			b.Fatal(err)
		}
	}
}

type benchHost struct{}

func (benchHost) ReadMbl(string) (int64, error)                   { return 0, nil }
func (benchHost) WriteMbl(string, int64) error                    { return nil }
func (benchHost) TableOp(_, _ string, _ []rcl.Arg) (int64, error) { return 0, nil }
func (benchHost) Call(string, []rcl.Arg) (int64, error)           { return 0, nil }

// BenchmarkTraceGeneration measures the workload generator at the
// scaled Fig. 14 size.
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	cfg := workload.DefaultTraceConfig()
	for i := 0; i < b.N; i++ {
		tr := workload.Generate(cfg)
		if len(tr.Packets) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkEstimators measures the Fig. 14 estimators' per-packet cost.
func BenchmarkEstimators(b *testing.B) {
	b.ReportAllocs()
	tr := workload.Generate(workload.TraceConfig{
		Flows: 1000, TotalPackets: 100000, Duration: 100 * time.Millisecond,
		ZipfS: 1.1, MinPktSize: 64, MaxPktSize: 1500, Sources: 128, Seed: 1,
	})
	b.Run("mantis", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			baseline.RunEstimator(tr, baseline.NewMantisSampler(5*time.Microsecond))
		}
	})
	b.Run("sflow", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			baseline.RunEstimator(tr, baseline.NewSFlow(30000, 1))
		}
	})
	b.Run("countmin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			baseline.RunEstimator(tr, baseline.NewCountMin(2, 8192, 1))
		}
	})
}

// BenchmarkHotPaths runs the perf-regression suite (the source of
// BENCH_rmt.json) under the normal `go test -bench` machinery, so its
// metrics are reproducible without cmd/perfbench.
func BenchmarkHotPaths(b *testing.B) {
	for _, nb := range perf.HotPathBenchmarks() {
		b.Run(nb.Name, nb.Bench)
	}
}
