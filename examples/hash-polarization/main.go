// The hash-polarization example runs use case #3: all traffic shares
// the initial ECMP hash input (the destination address), polarizing
// the 4-path group onto one port. The reaction watches per-path
// counters, detects the persistent imbalance, and shifts the malleable
// hash-input field to the source address, rebalancing the group.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/usecases"
)

func main() {
	res, err := usecases.RunPolar(3, 50*time.Microsecond, 3*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hash input shifted: %v (first shift at %v)\n", res.Shifted, res.ShiftAt)
	fmt.Printf("imbalance (deviation/mean): %.2f before -> %.2f after\n", res.MADBefore, res.MADAfter)
	fmt.Println("final per-path traffic shares:")
	for i, share := range res.PortShares {
		fmt.Printf("  path %d: %5.1f%%\n", i, share*100)
	}
}
