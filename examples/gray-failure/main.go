// The gray-failure example runs the paper's Figure 16 use case: hosts
// emit 1µs heartbeats, one silently stops (a gray failure: the link
// stays up), and the Mantis reaction detects the dip against the
// delta = floor(eta*Td/Ts) threshold and reroutes within 100-200µs.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/usecases"
)

func main() {
	ports := []int{2, 3, 4, 5}
	fmt.Println("T_s = 1µs heartbeats on ports 2-5; gray failure on port 3 at t=500µs")
	for _, td := range []time.Duration{20 * time.Microsecond, 50 * time.Microsecond, 200 * time.Microsecond} {
		res, err := usecases.RunFig16(1, ports, 3, 500*time.Microsecond, td, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  T_d=%-6v detected=%v rerouted in %v (false positives: %d)\n",
			td, res.Detected, res.ReactionTime, res.FalsePositives)
	}
}
