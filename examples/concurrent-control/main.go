// The concurrent-control example runs three kinds of control-plane
// clients against one switch through the ctlplane service — the
// multi-tenant wiring a production switch daemon would use:
//
//   - a PRIMARY session: the Mantis agent, whose reaction tags packets
//     with the port currently holding the deepest queue. Its dialogue
//     ops ride the high-priority class.
//   - two LEGACY sessions: bulk writers (think BGP daemons) churning
//     entries of a conventional forwarding table. They share the bulk
//     class round-robin and never delay a dialogue op by more than the
//     one operation already occupying the channel.
//   - an OBSERVER session: a read-only monitor that tails live register
//     state and session statistics; any write it attempts is refused.
//
// The run also demonstrates arbitration: halfway in, a would-be
// controller with a lower election id fails to take over.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/rmt"
	"repro/internal/sim"
)

const program = `
header_type h_t { fields { tag : 16; port : 8; dst : 16; } }
header h_t hdr;

register qdepths { width : 32; instance_count : 16; }

malleable value value_var { width : 16; init : 0; }

action observe() {
  register_write(qdepths, hdr.port, standard_metadata.packet_length);
  modify_field(hdr.tag, ${value_var});
}
table t { actions { observe; } default_action : observe; size : 1; }

// A conventional forwarding table owned by the legacy writers.
action fwd(port) { modify_field(standard_metadata.egress_spec, port); }
table routes { reads { hdr.dst : exact; } actions { fwd; } size : 64; }

reaction my_reaction(reg qdepths) {
  uint16_t current_max = 0;
  uint16_t max_port = 0;
  for (int i = 0; i < 16; ++i) {
    if (qdepths[i] > current_max) {
      current_max = qdepths[i];
      max_port = i;
    }
  }
  ${value_var} = max_port;
}

control ingress { apply(t); apply(routes); }
`

func main() {
	plan, err := compiler.CompileSource(program, compiler.DefaultOptions())
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		log.Fatalf("switch: %v", err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	svc := ctlplane.New(s, drv, ctlplane.Options{})

	// The Mantis agent holds the primary session (election id 10).
	agent, _, err := core.NewSessionAgent(s, svc, 10, plan, core.Options{})
	if err != nil {
		log.Fatalf("agent session: %v", err)
	}
	agent.Start()

	// Two legacy writers churn the routes table through bulk sessions.
	for c := 0; c < 2; c++ {
		c := c
		sess, err := svc.Open(ctlplane.SessionOptions{
			Name: fmt.Sprintf("bgp%d", c), Role: ctlplane.RoleLegacy,
		})
		if err != nil {
			log.Fatalf("legacy session: %v", err)
		}
		s.Spawn(sess.Name(), func(p *sim.Proc) {
			h, err := sess.AddEntry(p, "routes", rmt.Entry{
				Keys: []rmt.KeySpec{rmt.ExactKey(uint64(c))}, Action: "fwd", Data: []uint64{uint64(c)},
			})
			if err != nil {
				log.Fatalf("%s add: %v", sess.Name(), err)
			}
			for i := 0; ; i++ {
				p.Sleep(3 * time.Microsecond)
				if err := sess.ModifyEntry(p, "routes", h, "fwd", []uint64{uint64(i % 16)}); err != nil {
					log.Fatalf("%s modify: %v", sess.Name(), err)
				}
			}
		})
	}

	// The observer tails live state on a read-only session.
	obs, err := svc.Open(ctlplane.SessionOptions{Name: "monitor"})
	if err != nil {
		log.Fatalf("observer session: %v", err)
	}
	s.Spawn("monitor", func(p *sim.Proc) {
		for {
			p.Sleep(250 * time.Microsecond)
			vals, err := obs.BatchRead(p, []driver.ReadReq{{Reg: "qdepths", Lo: 0, Hi: 16}})
			if err != nil {
				log.Fatalf("monitor read: %v", err)
			}
			max, arg := uint64(0), 0
			for i, v := range vals[0] {
				if v > max {
					max, arg = v, i
				}
			}
			ast := agent.Stats()
			fmt.Printf("[%8v] monitor: deepest queue port %2d (%4d B); dialogue %4d iterations; bulk ops %d\n",
				p.Now(), arg, max, ast.Iterations, svc.Stats().BulkOps)
			// Observers cannot write — the service refuses, the switch
			// never sees it.
			if err := obs.RegWrite(p, "qdepths", 0, 0); !errors.Is(err, ctlplane.ErrReadOnly) {
				log.Fatalf("observer write was not refused: %v", err)
			}
		}
	})

	// Halfway in, a rival controller tries to grab primacy with a LOWER
	// election id and is turned away.
	s.Schedule(1*sim.Millisecond, func() {
		_, err := svc.Open(ctlplane.SessionOptions{Name: "rival", Role: ctlplane.RolePrimary, ElectionID: 3})
		fmt.Printf("[%8v] rival controller (election id 3 < 10): %v\n", s.Now(), err)
	})

	// Background traffic so the reaction has queues to observe.
	rng := s.Rand()
	s.Every(2*time.Microsecond, func() {
		pkt := plan.Prog.Schema.New()
		pkt.Size = 64 + rng.Intn(1400)
		pkt.SetName("hdr.port", uint64(rng.Intn(16)))
		pkt.SetName("hdr.dst", uint64(rng.Intn(2)))
		sw.Inject(rng.Intn(sw.Config().NumPorts), pkt)
	})

	s.RunFor(2 * time.Millisecond)
	agent.Stop()
	s.RunFor(100 * time.Microsecond)
	if err := agent.Err(); err != nil {
		log.Fatalf("agent: %v", err)
	}

	fmt.Println()
	cst := svc.Stats()
	fmt.Printf("ctlplane: %d dialogue ops, %d bulk ops, %d rejections, %d demotions\n",
		cst.DialogueOps, cst.BulkOps, cst.Rejections, cst.Demotions)
	for _, sess := range svc.Sessions() {
		st := sess.SessionStats()
		fmt.Printf("  %-12s %s/%s: %d completed, %d failed, max wait %v\n",
			sess.Name(), sess.Role(), sess.Class(), st.Completed, st.Failed, st.MaxWait)
	}
}
