// The quickstart example compiles a Figure-1-style P4R program — a
// malleable value updated by an embedded C-like reaction that scans a
// queue-depth register — loads it into the simulated RMT switch, runs
// the Mantis agent, and shows packets being tagged with the reaction's
// latest decision.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
)

const program = `
// Tag every packet with the port currently holding the deepest queue,
// as measured by the data plane and decided by the reaction loop.
header_type h_t { fields { tag : 16; port : 8; } }
header h_t hdr;

register qdepths { width : 32; instance_count : 16; }

malleable value value_var { width : 16; init : 0; }

action observe() {
  register_write(qdepths, hdr.port, standard_metadata.packet_length);
  modify_field(hdr.tag, ${value_var});
  modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { observe; } default_action : observe; size : 1; }

reaction my_reaction(reg qdepths) {
  uint16_t current_max = 0;
  uint16_t max_port = 0;
  for (int i = 0; i < 16; ++i) {
    if (qdepths[i] > current_max) {
      current_max = qdepths[i];
      max_port = i;
    }
  }
  ${value_var} = max_port;
}

control ingress { apply(t); }
`

func main() {
	// 1. Compile P4R -> malleable P4 program + reaction plan.
	plan, err := compiler.CompileSource(program, compiler.DefaultOptions())
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Printf("compiled: %d P4R lines -> %d generated P4 lines, %d init table(s)\n",
		plan.SourceLines, plan.Prog.LineCount(), len(plan.InitTables))

	// 2. Load the program into a simulated switch behind a driver.
	s := sim.New(42)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		log.Fatalf("switch: %v", err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())

	// 3. Start the Mantis agent: prologue, then the dialogue loop.
	agent := core.NewAgent(s, drv, plan, core.Options{})
	agent.Start()

	// 4. Traffic: the biggest packets arrive on port 11.
	sw.Tx = func(_ int, pkt *packet.Packet) {
		fmt.Printf("t=%-10v packet out, tagged with port %d\n", s.Now(), pkt.GetName("hdr.tag"))
	}
	send := func(at time.Duration, port, size int) {
		s.Schedule(at, func() {
			pkt := plan.Prog.Schema.New()
			pkt.Size = size
			pkt.SetName("hdr.port", uint64(port))
			sw.Inject(0, pkt)
		})
	}
	send(20*time.Microsecond, 3, 200)
	send(25*time.Microsecond, 11, 1400) // deepest queue
	send(30*time.Microsecond, 7, 600)
	send(500*time.Microsecond, 0, 64) // observes the reaction's decision

	s.RunFor(time.Millisecond)
	agent.Stop()
	s.Run()
	if err := agent.Err(); err != nil {
		log.Fatalf("agent: %v", err)
	}

	v, _ := agent.Mbl("value_var")
	st := agent.Stats()
	fmt.Printf("\nreaction ran %d iterations (last took %v); value_var = %d (expected 11)\n",
		st.Iterations, st.LastIteration, v)
}
