// The dos-mitigation example runs the paper's Figure 15 scenario: 25
// paced TCP senders hold a 10 Gbps bottleneck at ~20% until a UDP
// flooder arrives at 25 Gbps; the Mantis reaction estimates per-sender
// rates from polled data-plane state and installs a blocklist entry
// within ~100µs, after which the benign flows recover.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/usecases"
)

func main() {
	res, err := usecases.RunFig15(usecases.DefaultFig15Config(), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flood started at        %v\n", res.FloodStart)
	fmt.Printf("mitigation installed at %v (detection latency %v)\n", res.BlockedAt, res.DetectionLatency)
	fmt.Printf("benign goodput: %.2f Gbps before, %.2f during flood, %.2f after recovery\n\n",
		res.PreGbps, res.FloodGbps, res.PostGbps)
	starts, sums := res.Goodput.Bucketize(300 * time.Microsecond)
	fmt.Println("aggregate benign goodput over time:")
	for i := range starts {
		gbps := sums[i] * 8 / 300e-6 / 1e9
		fmt.Printf("  %8v %5.2f Gbps %s\n", starts[i], gbps, strings.Repeat("#", int(gbps*10)))
	}
}
