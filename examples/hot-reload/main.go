// The hot-reload example demonstrates §7's dynamic loading: the
// reaction body is swapped at runtime — first from one embedded C-like
// body to another, then to a native Go function — without stopping the
// agent or disturbing the data plane. This mirrors the original's
// signal-triggered unload/relink of reaction .so files.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/rmt"
	"repro/internal/sim"
)

const program = `
header_type h_t { fields { x : 16; } }
header h_t hdr;
malleable value mode { width : 16; init : 0; }
action tag() { modify_field(hdr.x, ${mode}); }
table t { actions { tag; } default_action : tag; size : 1; }
reaction policy() {
  // v1: a constant policy.
  ${mode} = 100;
}
control ingress { apply(t); }
`

func main() {
	plan, err := compiler.CompileSource(program, compiler.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	agent := core.NewAgent(s, drv, plan, core.Options{})
	agent.Start()

	report := func(label string) {
		v, _ := agent.Mbl("mode")
		st := agent.Stats()
		fmt.Printf("t=%-8v %-22s mode=%d (iterations so far: %d)\n", s.Now(), label, v, st.Iterations)
	}

	s.RunFor(100 * time.Microsecond)
	report("v1 (compiled body)")

	// Hot-swap to a new interpreted body — the agent keeps looping.
	if err := agent.SwapReaction("policy", nil, "${mode} = 200;", false); err != nil {
		log.Fatal(err)
	}
	s.RunFor(100 * time.Microsecond)
	report("v2 (reloaded body)")

	// Hot-swap to a native Go policy.
	counter := uint64(0)
	if err := agent.SwapReaction("policy", func(ctx *core.Ctx) error {
		counter++
		return ctx.SetMbl("mode", 300+counter%10)
	}, "", false); err != nil {
		log.Fatal(err)
	}
	s.RunFor(100 * time.Microsecond)
	report("v3 (native function)")

	agent.Stop()
	s.Run()
	if err := agent.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("agent ran continuously across both reloads")
}
