// The rl-ecn example runs use case #4: the DCTCP ECN marking threshold
// is a malleable value tuned by an off-policy Q-learning reaction whose
// reward combines link utilization with a queue-length penalty. A DCTCP
// flow provides the feedback loop.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/usecases"
)

func main() {
	res, err := usecases.RunRL(5, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TD updates applied:       %d\n", res.Updates)
	fmt.Printf("reward: early %.3f -> late %.3f\n", res.EarlyReward, res.LateReward)
	fmt.Printf("greedy threshold (mid-pressure state): %d packets\n", res.FinalGreedyThreshold)
	fmt.Printf("DCTCP flow delivered:     %.2f MB\n", float64(res.DeliveredBytes)/1e6)
}
