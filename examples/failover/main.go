// The failover example runs two Mantis controllers against one switch:
// a journaled primary and a hot standby. The primary's reaction updates
// two tables in lockstep every iteration, write-ahead journaling each
// update; every forwarded packet checks that it never observes the two
// tables out of sync. Mid-run the primary is killed part-way through
// mirroring a committed update — the worst torn state, where the switch
// already serves the new config but the shadow copies are stale. The
// standby notices the journal heartbeat go silent, elects itself
// primary with a higher election id, audits the live switch against the
// journal, classifies the torn iteration, rolls it forward, and resumes
// the dialogue. The run prints the reconciliation verdict and the MTTR
// decomposition (detect / audit / reconcile / resume).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
)

const program = `
header_type h_t { fields { k : 8; o1 : 32; o2 : 32; port : 8; } }
header h_t hdr;
register qd { width : 32; instance_count : 8; }
action meas() { register_write(qd, hdr.port, standard_metadata.packet_length); }
action set1(v) { modify_field(hdr.o1, v); }
action set2(v) {
  modify_field(hdr.o2, v);
  modify_field(standard_metadata.egress_spec, 1);
}
table m { actions { meas; } default_action : meas; size : 1; }
malleable table t1 { reads { hdr.k : exact; } actions { set1; } size : 4; }
malleable table t2 { reads { hdr.k : exact; } actions { set2; } size : 4; }
reaction react(reg qd) { }
control ingress { apply(m); apply(t1); apply(t2); }
`

func main() {
	plan, err := compiler.CompileSource(program, compiler.DefaultOptions())
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		log.Fatalf("switch: %v", err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	svc := ctlplane.New(s, drv, ctlplane.Options{})

	// The primary holds election id 1; a crash injector wraps its
	// session, armed to kill it right before the third ModifyEntry of a
	// dialogue iteration — i.e. mid-mirror, after the version flip has
	// already committed on the switch.
	sess, err := svc.Open(ctlplane.SessionOptions{
		Name: "primary", Role: ctlplane.RolePrimary, ElectionID: 1,
	})
	if err != nil {
		log.Fatalf("primary session: %v", err)
	}
	inj := faults.Wrap(s, sess, faults.CrashMidMirror(), 1)
	inj.SetEnabled(false)

	// Both controllers share the durable intent journal: the primary
	// write-ahead logs each iteration into it, the standby recovers
	// from it.
	store := journal.NewMemStore()

	// The reaction both controllers run: bump a shared generation and
	// write it to both tables, so any packet seeing o1 != o2 proves a
	// torn cross-table state.
	var h1, h2 core.UserHandle
	gen := uint64(0)
	react := func(ctx *core.Ctx) error {
		gen++
		t1, _ := ctx.Table("t1")
		t2, _ := ctx.Table("t2")
		if err := t1.ModifyEntry(h1, "set1", []uint64{gen}); err != nil {
			return err
		}
		return t2.ModifyEntry(h2, "set2", []uint64{gen})
	}

	primary := core.NewAgent(s, inj, plan, core.Options{
		Recovery: core.DefaultRecovery(),
		Journal:  &core.JournalConfig{Store: store},
		AfterIteration: func(p *sim.Proc, a *core.Agent) {
			// Arm at an iteration boundary so the crash lands at a
			// deterministic protocol phase.
			if a.Stats().Iterations == 100 {
				inj.SetEnabled(true)
			}
		},
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			t1, _ := a.Table("t1")
			t2, _ := a.Table("t2")
			var err error
			if h1, err = t1.AddEntry(p, core.UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{0}}); err != nil {
				return err
			}
			h2, err = t2.AddEntry(p, core.UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set2", Data: []uint64{0}})
			return err
		},
	})
	if err := primary.RegisterNativeReaction("react", react); err != nil {
		log.Fatalf("primary reaction: %v", err)
	}

	// The standby watches the journal heartbeat; on silence it opens a
	// primary session with a higher election id and recovers.
	sb := core.NewStandby(s, svc, core.StandbyOptions{
		Name:             "standby",
		ElectionID:       2,
		Store:            store,
		Plan:             plan,
		HeartbeatTimeout: 50 * time.Microsecond,
		CheckEvery:       3 * time.Microsecond,
		Agent:            core.Options{Recovery: core.DefaultRecovery()},
		Configure: func(a *core.Agent) error {
			return a.RegisterNativeReaction("react", react)
		},
	})

	// Every forwarded packet audits cross-table consistency.
	packets, violations := 0, 0
	sw.Tx = func(_ int, pkt *packet.Packet) {
		packets++
		if pkt.GetName("hdr.o1") != pkt.GetName("hdr.o2") {
			violations++
		}
	}

	primary.Start()
	i := 0
	tick := s.Every(200*sim.Nanosecond, func() {
		pkt := plan.Prog.Schema.New()
		pkt.Size = 64 + (i%8)*100
		pkt.SetName("hdr.k", 7)
		pkt.SetName("hdr.port", uint64(i%8))
		sw.Inject(0, pkt)
		i++
	})
	s.RunFor(2 * time.Millisecond)
	tick.Stop()
	sb.Stop()
	if succ := sb.Agent(); succ != nil {
		succ.Stop()
	}
	s.RunFor(time.Millisecond)

	if err := sb.Err(); err != nil {
		log.Fatalf("standby: %v", err)
	}
	if !inj.Crashed() {
		log.Fatal("the crash never fired")
	}
	if !sb.TookOver() {
		log.Fatal("the standby never took over")
	}
	rep := sb.Report()
	succ := sb.Agent()
	if err := succ.Err(); err != nil {
		log.Fatalf("successor: %v", err)
	}

	crashAt := inj.CrashedAt()
	fmt.Printf("primary:    crashed at %v mid-mirror, iteration %d journaled\n",
		crashAt, rep.Recover.Iteration)
	fmt.Printf("takeover:   verdict %q — audited %d tables / %d entries, %d repair writes\n",
		rep.Recover.Outcome, rep.Recover.AuditedTables, rep.Recover.AuditedEntries, rep.Recover.RepairWrites)
	fmt.Printf("MTTR:       %v total\n", rep.ResumedAt.Sub(crashAt))
	fmt.Printf("  detect    %v (journal heartbeat timeout)\n", rep.DetectedAt.Sub(crashAt))
	fmt.Printf("  audit     %v (switch read-back vs journal)\n", rep.Recover.AuditTime)
	fmt.Printf("  reconcile %v (roll the torn iteration forward)\n", rep.Recover.ReconcileTime)
	fmt.Printf("  resume    %v (successor start to first commit)\n", rep.ResumedAt.Sub(rep.RecoveredAt))
	sst := succ.Stats()
	fmt.Printf("successor:  %d commits after takeover (resumed from iteration %d)\n",
		sst.Commits, rep.Recover.Iteration)
	fmt.Printf("audit:      %d packets crossed the failover, %d saw torn cross-table state\n",
		packets, violations)
	if violations != 0 {
		log.Fatal("serializability violated across the takeover")
	}
}
